(** UnixBench workload models (Figure 7's benchmark programs).

    Each program is modelled as a task consuming CPU in small work units and
    counting completions; its score is units per second. Introspection
    activity degrades throughput through three channels, matching the
    paper's observations (§VI-B2):

    - {e core theft}: a work unit in flight on a core taken by the secure
      world simply stalls until the core returns;
    - {e memory contention}: while any core's secure world streams the
      kernel image through the hash, memory-bound programs' work units
      dilate in proportion to their [mem_sensitivity];
    - {e cache refill}: for a window after a core returns from the
      secure world, units on that core dilate (the introspection evicted
      the program's working set) — again scaled by [mem_sensitivity].

    The two most memory-traffic-bound programs, file copy 256B and context
    switching, have the highest sensitivities; they are the two the paper
    singles out (3.556% and 3.912% degradation). *)

type program = {
  prog_name : string;
  unit_cpu : Satin_engine.Sim_time.t; (** CPU per work unit, unperturbed *)
  mem_sensitivity : float; (** 0 = pure CPU, 1 = fully memory-bound *)
  refill_sensitivity : float;
      (** how much throughput rides on per-core warm state (caches, buffer
          cache, scheduler hotness) that a secure-world pass evicts *)
}

val programs : program list
(** The UnixBench suite modelled: dhrystone2, whetstone, execl, file copy
    256B/1024B/4096B, pipe throughput, context switching, process creation,
    shell scripts (1), shell scripts (8), syscall overhead. *)

val find_program : string -> program
(** Raises [Not_found]. *)

(** A running benchmark instance. *)
type instance

val launch :
  Satin_kernel.Kernel.t ->
  program ->
  ?affinity:int ->
  copies:int ->
  unit ->
  instance
(** Spawn [copies] tasks of the program (unpinned unless [affinity]).
    Counting starts immediately. *)

val completed_units : instance -> int

val score : instance -> at:Satin_engine.Sim_time.t -> float
(** Units per second of simulated time since launch, evaluated at [at]. *)

val stop : instance -> unit

(** Contention parameters (exposed for calibration and ablation). *)
module Tuning : sig
  val contention_factor : float ref
  (** Work-unit dilation per squared [mem_sensitivity] while a scan is
      streaming memory (default 3.5). *)

  val cache_refill_window : Satin_engine.Sim_time.t ref
  (** How long after a secure-world exit a core's units stay dilated
      (default 220 ms). *)

  val cache_refill_factor : float ref
  (** Dilation per unit of [refill_sensitivity] inside the refill window
      (default 9.0). *)
end
