(** Pending-event set for the discrete-event engine.

    A 4-ary min-heap over unboxed parallel [int] arrays, ordered by
    (time, insertion sequence): events scheduled for the same instant fire
    in insertion order, which keeps simulations deterministic. Payloads
    live in a recycled slot table; a {!handle} is an immediate int packing
    (slot, generation), so a push allocates only the payload cell and the
    {!pop_into} dispatch path allocates nothing at all (DESIGN §10).
    Cancellation is O(1) (a tombstone flag); cancelled entries are dropped
    lazily when they reach the heap top. *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. Immediate (unboxed);
    generation-guarded, so operations on a handle whose slot has been
    recycled are no-ops. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:Sim_time.t -> 'a -> handle
(** Schedule a payload at an absolute time. *)

val cancel : 'a t -> handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired or already-
    cancelled event is a no-op. *)

val is_live : 'a t -> handle -> bool
(** [is_live t h] is [true] until the event fires or is cancelled. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest live event. Convenience wrapper over
    {!pop_into}; allocates the option and pair. *)

val pop_into : 'a t -> (Sim_time.t -> 'a -> unit) -> bool
(** [pop_into t f] removes the earliest live event and calls [f time
    payload]; returns [false] without calling [f] when no live event
    remains. The queue is fully restructured before [f] runs, so [f] may
    push or cancel freely. Allocation-free: the engine's drain loop passes
    one preallocated closure. *)

val peek_time : 'a t -> Sim_time.t option
(** Time of the earliest live event without removing it. *)

val peek_time_or : 'a t -> default:Sim_time.t -> Sim_time.t
(** Allocation-free {!peek_time}: the earliest live event's time, or
    [default] when the queue is empty. *)

val invariant_violations : 'a t -> string list
(** Structural self-check, one message per violated invariant (empty when
    healthy): 4-ary heap order over the occupied prefix, live-count
    agreement with the pending slots actually referenced, size within
    capacity, parallel-array capacity agreement, slot-table hygiene (every
    heap entry references a distinct allocated slot that still holds its
    payload) and free-list integrity (exactly the vacated slots, each with
    its payload cleared so fired and cancelled closures are collectible).
    The simulation sanitizer samples this on a cadence; it is O(size). *)

module Unsafe : sig
  val skew_live : 'a t -> int -> unit
  (** Corrupt the live-count by [delta] — a fault-injection hook for testing
      that the sanitizer catches accounting skew. Never call it elsewhere. *)
end
