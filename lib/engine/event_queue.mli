(** Pending-event set for the discrete-event engine.

    A binary min-heap ordered by (time, insertion sequence): events scheduled
    for the same instant fire in insertion order, which keeps simulations
    deterministic. Cancellation is O(1) (a tombstone flag); cancelled entries
    are dropped lazily when they reach the heap top. *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:Sim_time.t -> 'a -> handle
(** Schedule a payload at an absolute time. *)

val cancel : 'a t -> handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired or already-
    cancelled event is a no-op. *)

val is_live : handle -> bool
(** [is_live h] is [true] until the event fires or is cancelled. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest live event. *)

val peek_time : 'a t -> Sim_time.t option
(** Time of the earliest live event without removing it. *)

val invariant_violations : 'a t -> string list
(** Structural self-check, one message per violated invariant (empty when
    healthy): heap order over the occupied slots, live-count agreement with
    the pending entries actually stored, size within capacity, and slot
    hygiene (every vacated slot holds the shared filler, so fired and
    cancelled payloads are collectible). The simulation sanitizer samples
    this on a cadence; it is O(size). *)

module Unsafe : sig
  val skew_live : 'a t -> int -> unit
  (** Corrupt the live-count by [delta] — a fault-injection hook for testing
      that the sanitizer catches accounting skew. Never call it elsewhere. *)
end
