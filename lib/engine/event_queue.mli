(** Pending-event set for the discrete-event engine.

    A hierarchical timing wheel (3 levels × 2048 slots, spanning a 2^33-tick
    window ahead of the wheel cursor) with the former 4-ary unboxed min-heap
    demoted to an overflow tier for far-future events; everything is ordered
    by (time, insertion sequence), so events scheduled for the same instant
    fire in insertion order and simulations stay deterministic. Push and
    cancel are O(1) wheel-slot operations; expiry cascades a slot's chain
    down one level when the cursor enters it, amortized O(1) per event per
    level (DESIGN §12).

    Payloads live in a recycled slot table; a {!handle} is an immediate int
    packing (slot, generation), so a push allocates only the payload cell
    and the {!pop_into}/{!drain_batch} dispatch path allocates nothing at
    all. Cancellation is O(1) (a tombstone flag that also frees the
    payload); tombstones are dropped lazily when the cursor, a cascade, or
    the overflow heap's top reaches them. *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. Immediate (unboxed);
    generation-guarded, so operations on a handle whose slot has been
    recycled are no-ops. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:Sim_time.t -> 'a -> handle
(** Schedule a payload at an absolute time. O(1): one wheel-chain append
    (or an overflow-heap insert when [time] is outside the wheel window). *)

val cancel : 'a t -> handle -> unit
(** Cancel a scheduled event. Cancelling an already-fired or already-
    cancelled event is a no-op. The payload is released immediately. *)

val is_live : 'a t -> handle -> bool
(** [is_live t h] is [true] until the event fires or is cancelled. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest live event. Convenience wrapper over
    {!pop_into}; allocates the option and pair. *)

val pop_into : 'a t -> (Sim_time.t -> 'a -> unit) -> bool
(** [pop_into t f] removes the earliest live event and calls [f time
    payload]; returns [false] without calling [f] when no live event
    remains. The event is fully removed before [f] runs, so [f] may push
    or cancel freely ([f] must not pop — see {!drain_batch}).
    Allocation-free: the engine's drain loop passes one preallocated
    closure. *)

val drain_batch : 'a t -> max_events:int -> (Sim_time.t -> 'a -> unit) -> int
(** [drain_batch t ~max_events f] removes every live event sharing the earliest
    pending timestamp — at most [max_events] of them, lowest insertion
    sequence first — and calls [f time payload] for each; returns the
    number dispatched (0 when the queue is empty). [max_events] is a
    required label (pass [max_int] for "the whole batch"): an optional
    argument fed a computed bound would box a [Some] per call, defeating
    the allocation-free drain. The batch is claimed
    before the first call, so a callback pushing at the same instant
    starts a {e new} batch (global (time, seq) dispatch order is
    unchanged), while a callback cancelling a later event of the current
    batch still suppresses it, exactly as one-at-a-time popping would.
    Allocation-free on the steady state: the batch is gathered into a
    reusable scratch and insertion-sorted in place.

    [f] may push and cancel, but must not re-enter [pop]/[pop_into]/
    [drain_batch] on the same queue (raises [Invalid_argument]): the
    undispatched remainder of the batch is claimed and would be invisible
    to a nested drain. *)

val peek_time : 'a t -> Sim_time.t option
(** Time of the earliest live event without removing it. *)

val peek_time_or : 'a t -> default:Sim_time.t -> Sim_time.t
(** Allocation-free {!peek_time}: the earliest live event's time, or
    [default] when the queue is empty. *)

val cascades : 'a t -> int
(** Cumulative count of wheel-slot cascades (overflow-tier refills
    included) since creation — the batched-dispatch observability hook
    behind the [engine.cascades] series. *)

val invariant_violations : 'a t -> string list
(** Structural self-check, one message per violated invariant (empty when
    healthy): wheel-chain geometry (every chained event in the slot its
    time maps to, within its level's range, never behind the cursor, no
    link cycles, accurate tails and per-level counts), 4-ary heap order
    over the overflow tier and its membership contract (past or
    out-of-window entries only), live-count agreement with the pending
    slots actually referenced (in-flight batch entries included), slot-
    table hygiene (each slot referenced at most once, pending slots hold
    payloads, cancelled and vacated slots do not) and free-list integrity
    (exactly the unreferenced slots, each clean). The simulation sanitizer
    samples this on a cadence; it is O(capacity). *)

module Unsafe : sig
  val skew_live : 'a t -> int -> unit
  (** Corrupt the live-count by [delta] — a fault-injection hook for testing
      that the sanitizer catches accounting skew. Never call it elsewhere. *)
end
