(** Sample statistics for experiment campaigns.

    Two flavours: {!t} stores every sample (exact quantiles, boxplots —
    what the paper's Table II and Figure 4 need for 50-round campaigns), and
    {!Running} keeps O(1) state for long workload simulations. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Raises [Invalid_argument] on a NaN sample: NaN would silently poison
    the [min]/[max] folds (every comparison with NaN is false) and mis-bin
    [histogram]/[quantile], so it is rejected at the door. Infinities are
    accepted — they order correctly. *)

val add_time : t -> Sim_time.t -> unit
(** Adds a {!Sim_time.t} sample converted to seconds. *)

val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** Raises [Invalid_argument] when empty; likewise for the accessors below. *)

val min : t -> float
val max : t -> float
val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for a single sample. *)

val total : t -> float

val quantile : t -> float -> float
(** [quantile t q] with [0 <= q <= 1]; linear interpolation between order
    statistics (type-7, as in R and NumPy). *)

val median : t -> float

type boxplot = {
  low_whisker : float;   (** smallest sample >= q1 - 1.5*IQR *)
  q1 : float;
  median : float;
  q3 : float;
  high_whisker : float;  (** largest sample <= q3 + 1.5*IQR *)
  outliers : float list; (** samples beyond the whiskers, ascending *)
}

val boxplot : t -> boxplot
(** Tukey boxplot summary, the statistic plotted in the paper's Figure 4. *)

val to_array : t -> float array
(** Samples in insertion order (a copy). *)

val histogram : t -> bins:int -> (float * int) list
(** [(lower_edge, count)] per equal-width bin over [\[min, max\]]; the last
    bin is inclusive of the maximum. Requires [bins > 0] and a non-empty
    sample; a constant sample lands entirely in one bin. *)

val summary_row : t -> string
(** ["avg / max / min"] in scientific notation, the format of the paper's
    Tables I and II. *)

val pp_sci : Format.formatter -> float -> unit
(** Prints like the paper: ["2.61e-04"]. *)

(** Constant-space accumulator (Welford's algorithm). *)
module Running : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit
  (** Rejects NaN like {!Stats.add}. *)

  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end
