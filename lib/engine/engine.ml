type handle = Event_queue.handle

type t = {
  mutable clock : Sim_time.t;
  queue : (unit -> unit) Event_queue.t;
  mutable fired : int;
  mutable observer : (time:Sim_time.t -> pending:int -> unit) option;
  (* The drain callback handed to [Event_queue.pop_into], built once at
     creation: [step] runs with zero allocation (DESIGN §10). *)
  mutable dispatch : Sim_time.t -> (unit -> unit) -> unit;
}

exception Schedule_in_past

let create () =
  let t =
    {
      clock = Sim_time.zero;
      queue = Event_queue.create ();
      fired = 0;
      observer = None;
      dispatch = (fun _ _ -> ());
    }
  in
  t.dispatch <-
    (fun time f ->
      t.clock <- time;
      f ();
      t.fired <- t.fired + 1;
      match t.observer with
      | Some obs -> obs ~time:t.clock ~pending:(Event_queue.length t.queue)
      | None -> ());
  t

let now t = t.clock
let pending t = Event_queue.length t.queue
let events_fired t = t.fired
let set_observer t obs = t.observer <- obs
let observer t = t.observer

let at t ~time f =
  if time < t.clock then raise Schedule_in_past;
  Event_queue.push t.queue ~time f

let schedule t ~after f =
  if Sim_time.is_negative after then raise Schedule_in_past;
  at t ~time:(Sim_time.add t.clock after) f

let cancel t handle = Event_queue.cancel t.queue handle
let is_live t handle = Event_queue.is_live t.queue handle

let every t ~period ?start f =
  let first =
    match start with Some s -> s | None -> Sim_time.add t.clock period
  in
  if first < t.clock then
    invalid_arg "Engine.every: ~start is in the past";
  (* The cell must exist before the first occurrence's closure can re-arm
     through it, and the first occurrence must exist to initialize the cell;
     a lazy knot ties the two without pushing any throwaway entry. *)
  let rec cell =
    lazy (ref (arm first))
  and arm time =
    at t ~time (fun () ->
        (* Re-arm first: the callback can then cancel !cell to stop the
           recurrence (the .mli contract). *)
        let cell = Lazy.force cell in
        cell := arm (Sim_time.add (now t) period);
        f ())
  in
  Lazy.force cell

let step t = Event_queue.pop_into t.queue t.dispatch

let run_until t stop =
  (* [peek_time_or] with a [max_int] sentinel keeps the bound check
     allocation-free; [step] returning false (empty queue) terminates the
     loop even for [stop = max_int]. *)
  let rec loop () =
    if Event_queue.peek_time_or t.queue ~default:max_int <= stop && step t
    then loop ()
  in
  loop ();
  if t.clock < stop then t.clock <- stop

type outcome = Drained | Limit_hit

let run_all t ?(limit = 100_000_000) () =
  let rec loop n =
    if n >= limit then if pending t > 0 then Limit_hit else Drained
    else if step t then loop (n + 1)
    else Drained
  in
  loop 0

let invariant_violations t =
  let queue = Event_queue.invariant_violations t.queue in
  let clock =
    if Sim_time.is_negative t.clock then
      [ Printf.sprintf "clock is negative (%d ns)" t.clock ]
    else []
  in
  clock @ List.map (fun v -> "event queue: " ^ v) queue

module Unsafe = struct
  let set_clock t time = t.clock <- time
  let skew_live t delta = Event_queue.Unsafe.skew_live t.queue delta
end
