type handle = Event_queue.handle

type t = {
  mutable clock : Sim_time.t;
  queue : (unit -> unit) Event_queue.t;
  mutable fired : int;
  mutable observer : (time:Sim_time.t -> pending:int -> unit) option;
  mutable batch_observer : (size:int -> cascades:int -> unit) option;
  mutable cascades_seen : int;
  (* The drain callback handed to [Event_queue.drain_batch], built once at
     creation: [step]/[run_all]/[run_until] run with zero allocation
     (DESIGN §10/§12). *)
  mutable dispatch : Sim_time.t -> (unit -> unit) -> unit;
}

exception Schedule_in_past

let create () =
  let t =
    {
      clock = Sim_time.zero;
      queue = Event_queue.create ();
      fired = 0;
      observer = None;
      batch_observer = None;
      cascades_seen = 0;
      dispatch = (fun _ _ -> ());
    }
  in
  t.dispatch <-
    (fun time f ->
      t.clock <- time;
      f ();
      t.fired <- t.fired + 1;
      match t.observer with
      | Some obs -> obs ~time:t.clock ~pending:(Event_queue.length t.queue)
      | None -> ());
  t

let now t = t.clock
let pending t = Event_queue.length t.queue
let events_fired t = t.fired
let set_observer t obs = t.observer <- obs
let observer t = t.observer
let set_batch_observer t obs = t.batch_observer <- obs

let at t ~time f =
  if time < t.clock then raise Schedule_in_past;
  Event_queue.push t.queue ~time f

let schedule t ~after f =
  if Sim_time.is_negative after then raise Schedule_in_past;
  at t ~time:(Sim_time.add t.clock after) f

let cancel t handle = Event_queue.cancel t.queue handle
let is_live t handle = Event_queue.is_live t.queue handle

let every t ~period ?start f =
  let first =
    match start with Some s -> s | None -> Sim_time.add t.clock period
  in
  if first < t.clock then
    invalid_arg "Engine.every: ~start is in the past";
  (* One body closure serves the whole recurrence: each occurrence re-arms
     by pushing the same closure, so the steady state allocates only the
     queue's payload cell (the words/event <= 2 periodic-timer contract) —
     and the period stays within the wheel window, so every re-arm is an
     O(1) wheel insert. The lazy knot ties the cell (which must exist
     before the first occurrence can re-arm through it) to the first
     occurrence (which initializes the cell) without a throwaway entry. *)
  let rec body () =
    (* Re-arm first: the callback can then cancel !cell to stop the
       recurrence (the .mli contract). *)
    let cell = Lazy.force cell in
    cell := at t ~time:(Sim_time.add t.clock period) body;
    f ()
  and cell = lazy (ref (at t ~time:first body)) in
  Lazy.force cell

let step t = Event_queue.pop_into t.queue t.dispatch

(* Report one dispatched batch to the observability hook; a single match
   when no hook is installed, so un-instrumented runs pay nothing. *)
let[@inline] note_batch t size =
  match t.batch_observer with
  | None -> ()
  | Some obs ->
      let c = Event_queue.cascades t.queue in
      obs ~size ~cascades:(c - t.cascades_seen);
      t.cascades_seen <- c

let run_until t stop =
  (* [peek_time_or] with a [max_int] sentinel keeps the bound check
     allocation-free; every batch shares one timestamp, so the bound only
     needs checking between batches. *)
  let rec loop () =
    if Event_queue.peek_time_or t.queue ~default:max_int <= stop then begin
      let n = Event_queue.drain_batch t.queue ~max_events:max_int t.dispatch in
      if n > 0 then begin
        note_batch t n;
        loop ()
      end
    end
  in
  loop ();
  if t.clock < stop then t.clock <- stop

type outcome = Drained | Limit_hit

let run_all t ?(limit = 100_000_000) () =
  let rec loop n =
    if n >= limit then if pending t > 0 then Limit_hit else Drained
    else
      let k =
        Event_queue.drain_batch t.queue ~max_events:(limit - n) t.dispatch
      in
      if k = 0 then Drained
      else begin
        note_batch t k;
        loop (n + k)
      end
  in
  loop 0

let invariant_violations t =
  let queue = Event_queue.invariant_violations t.queue in
  let clock =
    if Sim_time.is_negative t.clock then
      [ Printf.sprintf "clock is negative (%d ns)" t.clock ]
    else []
  in
  clock @ List.map (fun v -> "event queue: " ^ v) queue

module Unsafe = struct
  let set_clock t time = t.clock <- time
  let skew_live t delta = Event_queue.Unsafe.skew_live t.queue delta
end
