type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : float array option; (* cache, invalidated on add *)
}

let create () = { data = [||]; size = 0; sorted = None }

let add t x =
  if Float.is_nan x then invalid_arg "Stats.add: NaN sample";
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap 0.0 in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- None

let add_time t x = add t (Sim_time.to_sec_f x)
let count t = t.size
let is_empty t = t.size = 0

let check_nonempty t name =
  if t.size = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let total t = fold ( +. ) 0.0 t

let mean t =
  check_nonempty t "mean";
  total t /. float_of_int t.size

let min t =
  check_nonempty t "min";
  fold Stdlib.min infinity t

let max t =
  check_nonempty t "max";
  fold Stdlib.max neg_infinity t

let stddev t =
  check_nonempty t "stddev";
  if t.size = 1 then 0.0
  else
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (ss /. float_of_int (t.size - 1))

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.data 0 t.size in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

let quantile t q =
  check_nonempty t "quantile";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let a = sorted t in
  let n = Array.length a in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median t = quantile t 0.5

type boxplot = {
  low_whisker : float;
  q1 : float;
  median : float;
  q3 : float;
  high_whisker : float;
  outliers : float list;
}

let boxplot t =
  check_nonempty t "boxplot";
  let q1 = quantile t 0.25 and q3 = quantile t 0.75 in
  let med = quantile t 0.5 in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
  let a = sorted t in
  let inside = Array.to_list a |> List.filter (fun x -> x >= lo_fence && x <= hi_fence) in
  let low_whisker = match inside with x :: _ -> x | [] -> q1 in
  let high_whisker =
    match List.rev inside with x :: _ -> x | [] -> q3
  in
  let outliers =
    Array.to_list a |> List.filter (fun x -> x < lo_fence || x > hi_fence)
  in
  { low_whisker; q1; median = med; q3; high_whisker; outliers }

let to_array t = Array.sub t.data 0 t.size

let histogram t ~bins =
  check_nonempty t "histogram";
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = min t and hi = max t in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  for i = 0 to t.size - 1 do
    let x = t.data.(i) in
    let b =
      if width <= 0.0 then 0
      else Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. width))
    in
    counts.(b) <- counts.(b) + 1
  done;
  List.init bins (fun b -> (lo +. (float_of_int b *. width), counts.(b)))

let pp_sci fmt x = Format.fprintf fmt "%.2e" x

let summary_row t =
  Format.asprintf "%a / %a / %a" pp_sci (mean t) pp_sci (max t) pp_sci (min t)

module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    if Float.is_nan x then invalid_arg "Stats.Running.add: NaN sample";
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.n

  let check t name = if t.n = 0 then invalid_arg ("Stats.Running." ^ name ^ ": empty")

  let mean t =
    check t "mean";
    t.mean

  let variance t =
    check t "variance";
    if t.n = 1 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)

  let min t =
    check t "min";
    t.min

  let max t =
    check t "max";
    t.max

  let total t = t.total
end
