type 'a event = { time : Sim_time.t; value : 'a }

type 'a t = { mutable events : 'a event list; mutable size : int }
(* Stored in reverse order; reversed on query. *)

let create () = { events = []; size = 0 }

let record t time value =
  t.events <- { time; value } :: t.events;
  t.size <- t.size + 1

let length t = t.size
let to_list t = List.rev t.events
let values t = List.rev_map (fun e -> e.value) t.events
let filter p t = List.filter (fun e -> p e.value) (to_list t)

let count p t =
  List.fold_left (fun acc e -> if p e.value then acc + 1 else acc) 0 t.events

let find_first p t = List.find_opt (fun e -> p e.value) (to_list t)
let find_last p t = List.find_opt (fun e -> p e.value) t.events
let last t = match t.events with [] -> None | e :: _ -> Some e

let gaps p t =
  let times = List.filter_map (fun e -> if p e.value then Some e.time else None) (to_list t) in
  let rec pair = function
    | a :: (b :: _ as rest) -> Sim_time.diff b a :: pair rest
    | [ _ ] | [] -> []
  in
  pair times

let clear t =
  t.events <- [];
  t.size <- 0

let pp pp_value fmt t =
  List.iter
    (fun e -> Format.fprintf fmt "[%a] %a@." Sim_time.pp e.time pp_value e.value)
    (to_list t)
