type 'a event = { time : Sim_time.t; value : 'a }

type 'a t = { mutable data : 'a event array; mutable size : int }
(* Growable array in recording order: appends are amortized O(1) and the
   hot consumers (iter/fold, the obs sinks) walk events without the list
   reversal the old cons-list representation paid on every query. *)

let create () = { data = [||]; size = 0 }

let record t time value =
  let cap = Array.length t.data in
  let e = { time; value } in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap e in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- e;
  t.size <- t.size + 1

let length t = t.size

let iter f t =
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    f e.time e.value
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    acc := f !acc e.time e.value
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))
let values t = List.init t.size (fun i -> t.data.(i).value)

let filter p t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    let e = t.data.(i) in
    if p e.value then acc := e :: !acc
  done;
  !acc

let count p t = fold (fun acc _ value -> if p value then acc + 1 else acc) 0 t

let find_first p t =
  let rec go i =
    if i >= t.size then None
    else if p t.data.(i).value then Some t.data.(i)
    else go (i + 1)
  in
  go 0

let find_last p t =
  let rec go i =
    if i < 0 then None
    else if p t.data.(i).value then Some t.data.(i)
    else go (i - 1)
  in
  go (t.size - 1)

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let gaps p t =
  let acc = ref [] in
  let prev = ref None in
  iter
    (fun time value ->
      if p value then begin
        (match !prev with
        | Some p -> acc := Sim_time.diff time p :: !acc
        | None -> ());
        prev := Some time
      end)
    t;
  List.rev !acc

let clear t =
  t.data <- [||];
  t.size <- 0

let pp pp_value fmt t =
  iter
    (fun time value ->
      Format.fprintf fmt "[%a] %a@." Sim_time.pp time pp_value value)
    t
