(** Typed event trace for experiments.

    A trace records timestamped events of an arbitrary payload type so that
    experiment code can assert on the exact interleaving of simulated
    introspection rounds, probe reports, attack transitions, etc. Traces are
    append-only during a run and queried afterwards. *)

type 'a t

type 'a event = { time : Sim_time.t; value : 'a }

val create : unit -> 'a t

val record : 'a t -> Sim_time.t -> 'a -> unit

val length : 'a t -> int

val iter : (Sim_time.t -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f time value] to every event in recording order
    without materializing an intermediate list — the hot path for trace
    consumers (exporters, observability sinks). *)

val fold : ('acc -> Sim_time.t -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f init t] folds over events in recording order. *)

val to_list : 'a t -> 'a event list
(** Events in recording order. *)

val values : 'a t -> 'a list

val filter : ('a -> bool) -> 'a t -> 'a event list

val count : ('a -> bool) -> 'a t -> int

val find_first : ('a -> bool) -> 'a t -> 'a event option

val find_last : ('a -> bool) -> 'a t -> 'a event option

val last : 'a t -> 'a event option

val gaps : ('a -> bool) -> 'a t -> Sim_time.t list
(** [gaps p t] is the list of time differences between consecutive events
    satisfying [p] — e.g. the paper's "average time between two consecutive
    checks for area 14". *)

val clear : 'a t -> unit

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
