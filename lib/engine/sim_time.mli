(** Simulated time.

    Time is an integer count of nanoseconds since simulation boot. OCaml's
    63-bit native [int] covers roughly 146 years at nanosecond resolution,
    far beyond any campaign this library simulates (minutes of simulated
    time). Durations and instants share the representation; the type
    distinction is kept informal, as in the ARM generic-timer registers the
    library models. *)

type t = int
(** An instant or duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f x] is [x] seconds rounded to the nearest nanosecond. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val of_ns_f : float -> t
(** [of_ns_f x] is [x] nanoseconds rounded to the nearest nanosecond. *)

val add : t -> t -> t
val sub : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b]; may be negative. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int

val scale : t -> float -> t
(** [scale t k] is [t] multiplied by [k], rounded. *)

val is_negative : t -> bool

val until_next_multiple : period:t -> t -> t
(** [until_next_multiple ~period now] is the delay from [now] to the next
    strictly-later multiple of [period] — how the round-synchronized probe
    threads compute their sleep. Requires [period > 0]. *)

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit, e.g. ["2.380e-06 s"] style used by the
    paper's tables for sub-second values, plain seconds above 1 s. *)

val to_string : t -> string
