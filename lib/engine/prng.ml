type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let derive seed index =
  (* Two mix64 rounds over (seed, index) — a full-avalanche combiner, so
     derived seeds never collide in practice and adjacent indices share no
     stream structure. *)
  Int64.to_int
    (mix64
       (Int64.add
          (mix64 (Int64.of_int seed))
          (Int64.mul golden_gamma (Int64.of_int (index + 1)))))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let copy t = { state = t.state }
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let float01 t =
  (* 53 high bits of the 64-bit output, scaled to [0, 1). *)
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let uniform t a b =
  assert (a <= b);
  a +. ((b -. a) *. float01 t)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over 62 bits for exact uniformity. *)
  let mask_bound = bound - 1 in
  if bound land mask_bound = 0 then bits t land mask_bound
  else
    let limit = max_int / 2 / bound * bound in
    let rec draw () =
      let x = bits t in
      if x < limit * 2 then x mod bound else draw ()
    in
    draw ()

let bool t = Int64.compare (next_int64 t) 0L < 0
let bernoulli t p = float01 t < p

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float01 t and u2 = float01 t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  assert (mean > 0.0);
  -.mean *. log (1.0 -. float01 t)

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let pareto t ~scale ~shape =
  assert (scale > 0.0 && shape > 0.0);
  scale /. ((1.0 -. float01 t) ** (1.0 /. shape))

let triangular t ~low ~mode ~high =
  assert (low <= mode && mode <= high);
  if high = low then low
  else
    let u = float01 t in
    let fc = (mode -. low) /. (high -. low) in
    if u < fc then low +. sqrt (u *. (high -. low) *. (mode -. low))
    else high -. sqrt ((1.0 -. u) *. (high -. low) *. (high -. mode))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sim_duration t ~mean_s ~jitter =
  let x =
    if jitter <= 0.0 then mean_s
    else
      (* Lognormal with median [mean_s] and log-space sigma [jitter]. *)
      mean_s *. lognormal t ~mu:0.0 ~sigma:jitter
  in
  Stdlib.max 1 (Sim_time.of_sec_f x)
