(** Deterministic pseudo-random number generation.

    Every stochastic choice in the simulator flows from a [Prng.t] so that
    experiments are reproducible bit-for-bit from a seed. The generator is
    splitmix64 (Steele, Lea & Flood 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap splitting into independent
    streams so that concurrent simulated components do not perturb each
    other's sequences when the event interleaving changes. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Distinct seeds give independent
    streams for all practical purposes. *)

val derive : int -> int -> int
(** [derive seed index] is a well-mixed seed for the [index]-th independent
    trial of an experiment seeded with [seed] — the seed-derivation scheme
    of the parallel runner. Pure: no generator state is involved, so a trial
    can be replayed in isolation on any domain. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    parent's subsequent output. Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays [t]'s future. *)

val next_int64 : t -> int64
(** Uniform over all 2{^64} values. *)

val bits : t -> int
(** 62 uniform non-negative bits as a native int. *)

val float01 : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform in [\[a, b)]. Requires [a <= b]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Uses rejection sampling, so it is exactly uniform. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box–Muller transform. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. Requires [mean > 0]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a [gaussian ~mu ~sigma] deviate; used for heavy-ish tailed
    latency jitter. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto deviate [>= scale]; models rare large cross-core delays. *)

val triangular : t -> low:float -> mode:float -> high:float -> float
(** Triangular deviate on [\[low, high\]] peaking at [mode]; a good fit for
    min/avg/max triples reported by the paper. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sim_duration : t -> mean_s:float -> jitter:float -> Sim_time.t
(** [sim_duration t ~mean_s ~jitter] is a positive duration lognormally
    distributed around [mean_s] seconds with multiplicative spread
    [jitter] (e.g. [0.05] for ±5%-ish). *)
