(** Discrete-event simulation engine.

    The engine owns the clock and the pending-event set. Simulated components
    schedule thunks at future instants; [run_until]/[run_all] drain events in
    time order. Within one instant, events fire in scheduling order, so a
    simulation driven by a fixed {!Prng} seed is fully deterministic. *)

type t

type handle = Event_queue.handle
(** Cancellation token for a scheduled event. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current simulated instant. *)

val pending : t -> int
(** Number of live scheduled events. *)

val events_fired : t -> int
(** Total events executed so far. *)

val set_observer : t -> (time:Sim_time.t -> pending:int -> unit) option -> unit
(** [set_observer t (Some f)] calls [f] after each fired event with the
    instant it ran at and the remaining queue depth — the engine-level
    observability hook. [None] (the default) removes it; the per-event cost
    is then a single match. The observer must not assume it runs before or
    after other same-instant events. *)

val observer : t -> (time:Sim_time.t -> pending:int -> unit) option
(** The currently installed observer, so a later installer (e.g. the
    simulation sanitizer) can chain to it instead of silently replacing
    it. *)

val set_batch_observer : t -> (size:int -> cascades:int -> unit) option -> unit
(** [set_batch_observer t (Some f)] calls [f] after each dispatched batch
    ({!run_all}/{!run_until} drain same-instant events as one batch) with
    the number of events it fired and the wheel cascades it took — the
    hook behind the [engine.batch_size]/[engine.cascades] series. Runs
    {e between} batches, never inside a dispatch. [None] (the default)
    removes it; the per-batch cost is then a single match. *)

val schedule : t -> after:Sim_time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must not be
    negative. *)

val at : t -> time:Sim_time.t -> (unit -> unit) -> handle
(** [at t ~time f] runs [f] at the absolute instant [time], which must not be
    in the past. *)

val cancel : t -> handle -> unit

val is_live : t -> handle -> bool
(** [is_live t h] is [true] until the event fires or is cancelled. Handles
    are immediate slot/generation pairs, so liveness is resolved against
    the engine's queue rather than carried in the handle itself. *)

val every :
  t -> period:Sim_time.t -> ?start:Sim_time.t -> (unit -> unit) -> handle ref
(** [every t ~period f] runs [f] at [start] (default [now + period]) and then
    every [period]. The returned ref always holds the handle of the next
    occurrence; cancel it to stop the recurrence. Raises [Invalid_argument]
    if [start] is in the past. The recurrence reuses one re-arming closure
    and the queue stores payloads unwrapped, so a warmed-up recurrence
    allocates nothing per occurrence: each re-arm is an O(1) timing-wheel
    insert (a regression test pins the whole path at <= 2 words/event). *)

val run_until : t -> Sim_time.t -> unit
(** Fire all events up to and including the given instant; the clock ends at
    exactly that instant even if the queue empties earlier. *)

type outcome =
  | Drained  (** the queue emptied *)
  | Limit_hit  (** [limit] events fired with work still pending *)

val run_all : t -> ?limit:int -> unit -> outcome
(** Drain the whole queue (bounded by [limit] events, default 100M, to guard
    against runaway self-rescheduling). Returns {!Limit_hit} when the bound
    stopped the drain with events still pending — a silent truncation here
    previously masked runaway simulations. *)

val step : t -> bool
(** Fire the single earliest event. Returns [false] if the queue is empty. *)

val invariant_violations : t -> string list
(** Structural self-check of the engine's own state (clock sanity plus the
    {!Event_queue.invariant_violations} of the pending set); empty when
    healthy. Sampled by the simulation sanitizer. *)

module Unsafe : sig
  (** Fault-injection hooks for the sanitizer's own tests: deliberately
      corrupt engine state so a test can prove the corruption is caught.
      Never call these from simulation code. *)

  val set_clock : t -> Sim_time.t -> unit
  (** Force the clock to an arbitrary instant (e.g. a rewind). *)

  val skew_live : t -> int -> unit
  (** Corrupt the pending-event live count by a delta. *)
end

exception Schedule_in_past
