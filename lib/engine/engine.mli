(** Discrete-event simulation engine.

    The engine owns the clock and the pending-event set. Simulated components
    schedule thunks at future instants; [run_until]/[run_all] drain events in
    time order. Within one instant, events fire in scheduling order, so a
    simulation driven by a fixed {!Prng} seed is fully deterministic. *)

type t

type handle = Event_queue.handle
(** Cancellation token for a scheduled event. *)

val create : unit -> t

val now : t -> Sim_time.t
(** Current simulated instant. *)

val pending : t -> int
(** Number of live scheduled events. *)

val events_fired : t -> int
(** Total events executed so far. *)

val set_observer : t -> (time:Sim_time.t -> pending:int -> unit) option -> unit
(** [set_observer t (Some f)] calls [f] after each fired event with the
    instant it ran at and the remaining queue depth — the engine-level
    observability hook. [None] (the default) removes it; the per-event cost
    is then a single match. The observer must not assume it runs before or
    after other same-instant events. *)

val schedule : t -> after:Sim_time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at [now t + after]. [after] must not be
    negative. *)

val at : t -> time:Sim_time.t -> (unit -> unit) -> handle
(** [at t ~time f] runs [f] at the absolute instant [time], which must not be
    in the past. *)

val cancel : t -> handle -> unit

val is_live : handle -> bool

val every :
  t -> period:Sim_time.t -> ?start:Sim_time.t -> (unit -> unit) -> handle ref
(** [every t ~period f] runs [f] at [start] (default [now + period]) and then
    every [period]. The returned ref always holds the handle of the next
    occurrence; cancel it to stop the recurrence. *)

val run_until : t -> Sim_time.t -> unit
(** Fire all events up to and including the given instant; the clock ends at
    exactly that instant even if the queue empties earlier. *)

type outcome =
  | Drained  (** the queue emptied *)
  | Limit_hit  (** [limit] events fired with work still pending *)

val run_all : t -> ?limit:int -> unit -> outcome
(** Drain the whole queue (bounded by [limit] events, default 100M, to guard
    against runaway self-rescheduling). Returns {!Limit_hit} when the bound
    stopped the drain with events still pending — a silent truncation here
    previously masked runaway simulations. *)

val step : t -> bool
(** Fire the single earliest event. Returns [false] if the queue is empty. *)

exception Schedule_in_past
