type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let of_sec_f x = int_of_float (Float.round (x *. 1e9))
let to_sec_f t = float_of_int t /. 1e9
let of_ns_f x = int_of_float (Float.round x)
let add = ( + )
let sub = ( - )
let diff a b = a - b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b
let compare (a : t) (b : t) = Stdlib.compare a b
let scale t k = of_ns_f (float_of_int t *. k)
let is_negative t = t < 0

let until_next_multiple ~period now =
  if period <= 0 then invalid_arg "Sim_time.until_next_multiple: period <= 0";
  (((now / period) + 1) * period) - now

let pp fmt t =
  let sec = to_sec_f t in
  let abs = Float.abs sec in
  if abs >= 1.0 || t = 0 then Format.fprintf fmt "%.3f s" sec
  else Format.fprintf fmt "%.3e s" sec

let to_string t = Format.asprintf "%a" pp t
