(* 4-ary min-heap over unboxed parallel arrays.

   The heap proper is three [int array]s walked in lockstep — [times],
   [seqs], [slots] — so a sift touches flat integer memory only: no
   per-entry record, no pointer chasing, and a 4-ary fan-out that halves
   tree height versus the old boxed 2-ary heap (fewer compare/swap levels
   per push/pop on the event-rate profiles the simulator runs at).

   Payloads and lifecycle live in a parallel slot table indexed by the
   [slots] entries. A handle is an immediate int packing (slot, generation);
   slots are recycled through an intrusive free-list threaded via
   [slot_next], and the generation guards stale handles: cancelling a
   handle whose slot has since been reused is a no-op, exactly like
   cancelling an already-fired event.

   Packing (time, seq) into one int64 key was considered and rejected:
   native sim times use the full 63-bit range and a split key caps either
   the horizon or the event count with a silent-wraparound cliff. Two
   parallel int loads per comparison keep the full range with no cliff. *)

let state_free = 0
let state_pending = 1
let state_cancelled = 2

(* handle = (slot lsl gen_bits) lor generation. Generations wrap at 2^31;
   a stale handle only misfires if its exact slot is reused exactly 2^31
   times while the handle is still held. *)
let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1

type handle = int

type 'a t = {
  (* heap: parallel arrays, min-ordered by (time, seq); slots >= size are
     dead integers (no pointers), so only the slot table needs hygiene. *)
  mutable times : int array;
  mutable seqs : int array;
  mutable slots : int array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  (* slot table: payload + lifecycle, indexed by slot id. [None] payload
     the moment a slot leaves the heap, so fired and cancelled closures
     are collectible (the Weak-based regression test). *)
  mutable slot_payload : 'a option array;
  mutable slot_gen : int array;
  mutable slot_state : int array;
  mutable slot_next : int array; (* free-list threading; -1 terminates *)
  mutable free_head : int;
}

let create () =
  {
    times = [||];
    seqs = [||];
    slots = [||];
    size = 0;
    next_seq = 0;
    live = 0;
    slot_payload = [||];
    slot_gen = [||];
    slot_state = [||];
    slot_next = [||];
    free_head = -1;
  }

let is_empty t = t.live = 0
let length t = t.live

let handle_slot h = h lsr gen_bits
let handle_gen h = h land gen_mask

let is_live t h =
  let s = handle_slot h in
  s < Array.length t.slot_gen
  && t.slot_gen.(s) = handle_gen h
  && t.slot_state.(s) = state_pending

let[@inline] before t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let[@inline] swap t i j =
  let tm = Array.unsafe_get t.times i in
  Array.unsafe_set t.times i (Array.unsafe_get t.times j);
  Array.unsafe_set t.times j tm;
  let sq = Array.unsafe_get t.seqs i in
  Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs j);
  Array.unsafe_set t.seqs j sq;
  let sl = Array.unsafe_get t.slots i in
  Array.unsafe_set t.slots i (Array.unsafe_get t.slots j);
  Array.unsafe_set t.slots j sl

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

(* Immutable let-shadowing rather than a [ref]: an int ref is a minor-heap
   block without flambda, and sift_down runs once per pop. *)
let rec sift_down t i =
  let base = (i * 4) + 1 in
  if base < t.size then begin
    let c = base in
    let c = if base + 1 < t.size && before t (base + 1) c then base + 1 else c in
    let c = if base + 2 < t.size && before t (base + 2) c then base + 2 else c in
    let c = if base + 3 < t.size && before t (base + 3) c then base + 3 else c in
    if before t c i then begin
      swap t i c;
      sift_down t c
    end
  end

let grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let grow_int a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 cap;
    n
  in
  t.times <- grow_int t.times 0;
  t.seqs <- grow_int t.seqs 0;
  t.slots <- grow_int t.slots 0;
  let npayload = Array.make ncap None in
  Array.blit t.slot_payload 0 npayload 0 cap;
  t.slot_payload <- npayload;
  t.slot_gen <- grow_int t.slot_gen 0;
  t.slot_state <- grow_int t.slot_state state_free;
  t.slot_next <- grow_int t.slot_next (-1);
  (* Chain the new slots onto the free-list, lowest id on top so fresh
     queues hand out slot 0, 1, 2, ... in order. *)
  for s = ncap - 1 downto cap do
    t.slot_next.(s) <- t.free_head;
    t.free_head <- s
  done

let push t ~time payload =
  if t.size = Array.length t.times then grow t;
  let s = t.free_head in
  t.free_head <- t.slot_next.(s);
  t.slot_payload.(s) <- Some payload;
  t.slot_state.(s) <- state_pending;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.slots.(i) <- s;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  t.live <- t.live + 1;
  sift_up t i;
  (s lsl gen_bits) lor t.slot_gen.(s)

let cancel t h =
  let s = handle_slot h in
  if
    s < Array.length t.slot_gen
    && t.slot_gen.(s) = handle_gen h
    && t.slot_state.(s) = state_pending
  then begin
    t.slot_state.(s) <- state_cancelled;
    t.live <- t.live - 1
  end

let release_slot t s =
  t.slot_payload.(s) <- None;
  t.slot_state.(s) <- state_free;
  t.slot_gen.(s) <- (t.slot_gen.(s) + 1) land gen_mask;
  t.slot_next.(s) <- t.free_head;
  t.free_head <- s

let remove_top t =
  let s = t.slots.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    t.times.(0) <- t.times.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.slots.(0) <- t.slots.(n);
    sift_down t 0
  end;
  release_slot t s

(* Lazily drop cancelled tombstones that have reached the top. *)
let rec drop_dead_top t =
  if t.size > 0 && t.slot_state.(t.slots.(0)) <> state_pending then begin
    remove_top t;
    drop_dead_top t
  end

let pop_into t f =
  drop_dead_top t;
  if t.size = 0 then false
  else begin
    let s = t.slots.(0) in
    let time = t.times.(0) in
    let p = match t.slot_payload.(s) with Some p -> p | None -> assert false in
    (* Finish restructuring before [f]: the callback is free to push. *)
    remove_top t;
    t.live <- t.live - 1;
    f time p;
    true
  end

let pop t =
  let out = ref None in
  if pop_into t (fun time p -> out := Some (time, p)) then !out else None

let peek_time_or t ~default =
  drop_dead_top t;
  if t.size = 0 then default else t.times.(0)

let peek_time t =
  drop_dead_top t;
  if t.size = 0 then None else Some t.times.(0)

(* ---- invariant checking (the simulation sanitizer's substrate view) ---- *)

let invariant_violations t =
  let bad = ref [] in
  let report fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  let cap = Array.length t.times in
  if
    Array.length t.seqs <> cap
    || Array.length t.slots <> cap
    || Array.length t.slot_payload <> cap
    || Array.length t.slot_gen <> cap
    || Array.length t.slot_state <> cap
    || Array.length t.slot_next <> cap
  then report "parallel arrays disagree on capacity %d" cap;
  if t.size < 0 || t.size > cap then
    report "size %d outside [0, capacity %d]" t.size cap;
  if t.live < 0 || t.live > t.size then
    report "live count %d outside [0, size %d]" t.live t.size;
  for i = 1 to t.size - 1 do
    let parent = (i - 1) / 4 in
    if before t i parent then
      report
        "heap order broken at slot %d (time %d seq %d before parent time %d \
         seq %d)"
        i t.times.(i) t.seqs.(i) t.times.(parent) t.seqs.(parent)
  done;
  let referenced = Array.make (max cap 1) false in
  let pending = ref 0 in
  for i = 0 to t.size - 1 do
    let s = t.slots.(i) in
    if s < 0 || s >= cap then report "heap entry %d references bad slot %d" i s
    else begin
      if referenced.(s) then
        report "slot %d referenced by more than one heap entry" s;
      referenced.(s) <- true;
      (match t.slot_state.(s) with
      | st when st = state_pending -> incr pending
      | st when st = state_cancelled -> ()
      | _ -> report "heap entry %d references freed slot %d" i s);
      if t.slot_payload.(s) = None then
        report "entry at slot %d lost its payload" s
    end
  done;
  if !pending <> t.live then
    report "live count %d disagrees with %d pending entries" t.live !pending;
  (* Free-list: exactly the unreferenced slots, each clean. A cycle or a
     crosslink into the heap would loop, so walk at most [cap] links. *)
  let free = ref 0 in
  let s = ref t.free_head in
  while !s >= 0 && !free <= cap do
    if !s >= cap then report "free-list references bad slot %d" !s
    else begin
      if referenced.(!s) then
        report "slot %d is both on the heap and on the free-list" !s;
      if t.slot_state.(!s) <> state_free then
        report "free-list slot %d is not marked free" !s;
      if t.slot_payload.(!s) <> None then
        report "vacated slot %d retains a stale payload" !s
    end;
    incr free;
    s := if !s < cap then t.slot_next.(!s) else -1
  done;
  if !free <> cap - t.size then
    report "free-list holds %d slots, expected %d" !free (cap - t.size);
  List.rev !bad

module Unsafe = struct
  let skew_live t delta = t.live <- t.live + delta
end
