(* Hierarchical timing wheel with a 4-ary heap overflow tier.

   Nearly every event the simulator schedules is a near-deadline periodic
   timer or scheduler tick, so the pending set is a Varghese–Lauck
   hierarchical timing wheel: [levels] levels of [wheel_slots] slots, level
   [l] spanning deltas below [2^((l+1) * slot_bits)] at a granularity of
   [2^(l * slot_bits)] ticks. Insertion picks the level of the highest
   bit-group in which the event time differs from the wheel cursor
   ([time lxor cur]), which guarantees the target slot is strictly ahead of
   the cursor at that level — so a slot is expired exactly once, when the
   cursor enters it: level 0 slots dispatch (every entry shares one exact
   tick), higher-level slots cascade their chain down a level. Push and
   cancel are O(1); expiry is amortized O(1) per event per level.

   Events outside the wheel window — farther out than the cursor's aligned
   [2^(levels * slot_bits)] block, or (only via direct queue use; the
   engine forbids it) scheduled before the cursor — live in the overflow
   tier: the 4-ary min-heap over unboxed parallel int arrays that used to
   be the whole queue. As the cursor advances, heap entries whose time
   enters the window refill the wheel; past entries are popped straight
   from the heap (they precede everything in the wheel by construction, so
   ordering needs no cross-structure tie-break).

   Payloads and lifecycle live in a slot table indexed by integer slot ids.
   A handle is an immediate int packing (slot, generation); slots are
   recycled through a free-list, and the generation guards stale handles:
   cancelling a handle whose slot has since been reused is a no-op, exactly
   like cancelling an already-fired event. Per-slot metadata — (time, seq,
   next, generation+state) — is packed four words to a slot in one int
   array, so the cascade loop's walk of a chain costs one cache line per
   entry rather than four scattered ones; [next] doubles as the intrusive
   wheel-chain link and the free-list thread — a slot is on one or the
   other, never both.

   Dispatch is batched: [drain_batch] claims the whole level-0 chain at the
   earliest occupied tick, orders it by insertion sequence (chains are
   append-ordered, but a cascade or heap refill can land an older event
   behind a newer same-tick one, so the batch is insertion-sorted — almost
   always a no-op pass), and dispatches pending entries in (time, seq)
   order, rechecking each entry's state so a callback cancelling a
   later same-tick event still suppresses it, exactly as one-at-a-time
   popping would. *)

let state_free = 0
let state_pending = 1
let state_cancelled = 2

(* handle = (slot lsl gen_bits) lor generation. Generations wrap at 2^31;
   a stale handle only misfires if its exact slot is reused exactly 2^31
   times while the handle is still held. *)
let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1

(* Unique static block marking "this slot holds no payload"; compared with
   physical equality only, never dereferenced as a payload. *)
let no_payload : Obj.t = Obj.repr (ref "event-queue-no-payload")

(* Wheel geometry: 3 levels of 2048 slots. Level l covers deltas below
   2048^(l+1), so the window reaches 2^33 ticks (~8.6 simulated seconds at
   nanosecond resolution) — periodic timers and scheduler ticks always hit
   the wheel; only end-of-campaign markers overflow to the heap. The wide,
   shallow shape is deliberate: a sub-millisecond delta lands directly in
   level 0 (no cascade at all), and a multi-millisecond one cascades once,
   where a 256-slot wheel would charge most events two cascades. *)
let slot_bits = 11
let wheel_slots = 1 lsl slot_bits
let slot_mask = wheel_slots - 1
let levels = 3
let window = 1 lsl (levels * slot_bits)

(* Occupancy bitmaps: one bit per wheel slot (set iff the chain is
   non-empty), packed 32 slots per word. Finding the next occupied slot is
   then a few word reads plus a de Bruijn count-trailing-zeros, instead of
   walking up to [wheel_slots] chain heads — the difference between
   O(slots) and O(1) per dispatch on sparse wheels. *)
let occ_shift = slot_bits - 5
let occ_words = wheel_slots lsr 5

let ntz32_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

(* Index of the lowest set bit of a non-zero 32-bit value (de Bruijn
   multiply; the [land 0xFFFFFFFF] emulates the 32-bit truncation the
   classic sequence relies on). *)
let[@inline] ntz32 x =
  Array.unsafe_get ntz32_table
    ((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

type handle = int

type 'a t = {
  (* overflow tier: parallel arrays, min-ordered by (time, seq); entries
     beyond [heap_size] are dead integers (no pointers). *)
  mutable times : int array;
  mutable seqs : int array;
  mutable slots : int array;
  mutable heap_size : int;
  (* wheel: chain heads/tails per (level, slot), -1 empty; level l slot j
     lives at index [(l lsl slot_bits) lor j]. *)
  wheel_head : int array;
  wheel_tail : int array;
  occ : int array; (* per-level occupancy bitmaps, [occ_words] words each *)
  level_count : int array; (* chain entries per level, tombstones included *)
  mutable wheel_count : int;
  mutable cur : int; (* wheel cursor; advances monotonically *)
  mutable cascades : int; (* cumulative slots cascaded (refills included) *)
  mutable next_seq : int;
  mutable live : int;
  (* cancelled entries still threaded through a chain or the heap. When
     zero — the common case; cancellation is rare — every occupied slot is
     known to hold only pending entries, so the dispatch path skips the
     tombstone-purge walk entirely. *)
  mutable dead : int;
  (* slot table: metadata packed 4 words per slot — [time; seq; next;
     (gen lsl 2) lor state] — plus the payload alongside. Payloads are
     stored unwrapped in an [Obj.t] array (the static [no_payload] sentinel
     marks vacancy), so a push allocates nothing at all: an ['a option]
     cell here used to cost 2 minor words per event plus a write-barrier
     hit and an extra dependent load on every dispatch. The array's static
     element type is [Obj.t], so it is always a uniform pointer array —
     float payloads stay individually boxed rather than flattening the
     array. Payload slots are re-sentineled the moment a slot leaves the
     structures (or is cancelled), so fired and cancelled closures are
     collectible. *)
  mutable slot_meta : int array;
  mutable slot_payload : Obj.t array;
  mutable free_head : int;
  (* in-flight batch: slot ids claimed off a level-0 chain, dispatched in
     seq order. Tracked in the record (not a local) so the sanitizer's
     invariant check — which runs from event callbacks mid-batch — can
     account for claimed-but-undispatched entries. *)
  mutable batch : int array;
  mutable batch_len : int;
  mutable batch_pos : int;
  mutable batch_active : bool;
}

let create () =
  {
    times = [||];
    seqs = [||];
    slots = [||];
    heap_size = 0;
    wheel_head = Array.make (levels * wheel_slots) (-1);
    wheel_tail = Array.make (levels * wheel_slots) (-1);
    occ = Array.make (levels * occ_words) 0;
    level_count = Array.make levels 0;
    wheel_count = 0;
    cur = 0;
    cascades = 0;
    next_seq = 0;
    live = 0;
    dead = 0;
    slot_meta = [||];
    slot_payload = [||];
    free_head = -1;
    batch = [||];
    batch_len = 0;
    batch_pos = 0;
    batch_active = false;
  }

let is_empty t = t.live = 0
let length t = t.live
let cascades t = t.cascades

let handle_slot h = h lsr gen_bits
let handle_gen h = h land gen_mask

(* ---- packed slot metadata ----

   The unsafe accessors are only ever applied to slot ids drawn from the
   structures themselves (chains, heap entries, free-list, validated
   handles), which are in range by construction; [invariant_violations]
   bounds-checks explicitly before touching anything. *)

let slot_capacity t = Array.length t.slot_meta lsr 2

let[@inline] m_time t s = Array.unsafe_get t.slot_meta (s lsl 2)
let[@inline] m_seq t s = Array.unsafe_get t.slot_meta ((s lsl 2) + 1)
let[@inline] m_next t s = Array.unsafe_get t.slot_meta ((s lsl 2) + 2)
let[@inline] m_gs t s = Array.unsafe_get t.slot_meta ((s lsl 2) + 3)
let[@inline] m_state t s = m_gs t s land 3
let[@inline] set_next t s v = Array.unsafe_set t.slot_meta ((s lsl 2) + 2) v
let[@inline] set_gs t s v = Array.unsafe_set t.slot_meta ((s lsl 2) + 3) v

let is_live t h =
  let s = handle_slot h in
  s < slot_capacity t
  &&
  let gs = m_gs t s in
  gs lsr 2 = handle_gen h && gs land 3 = state_pending

(* ---- overflow heap (ordering identical to the old all-heap queue) ---- *)

let[@inline] heap_before t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let[@inline] heap_swap t i j =
  let tm = Array.unsafe_get t.times i in
  Array.unsafe_set t.times i (Array.unsafe_get t.times j);
  Array.unsafe_set t.times j tm;
  let sq = Array.unsafe_get t.seqs i in
  Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs j);
  Array.unsafe_set t.seqs j sq;
  let sl = Array.unsafe_get t.slots i in
  Array.unsafe_set t.slots i (Array.unsafe_get t.slots j);
  Array.unsafe_set t.slots j sl

let rec heap_sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if heap_before t i parent then begin
      heap_swap t i parent;
      heap_sift_up t parent
    end
  end

let rec heap_sift_down t i =
  let base = (i * 4) + 1 in
  if base < t.heap_size then begin
    let c = base in
    let c =
      if base + 1 < t.heap_size && heap_before t (base + 1) c then base + 1
      else c
    in
    let c =
      if base + 2 < t.heap_size && heap_before t (base + 2) c then base + 2
      else c
    in
    let c =
      if base + 3 < t.heap_size && heap_before t (base + 3) c then base + 3
      else c
    in
    if heap_before t c i then begin
      heap_swap t i c;
      heap_sift_down t c
    end
  end

let heap_grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let grow_int a =
    let n = Array.make ncap 0 in
    Array.blit a 0 n 0 cap;
    n
  in
  t.times <- grow_int t.times;
  t.seqs <- grow_int t.seqs;
  t.slots <- grow_int t.slots

let heap_push t ~time ~seq s =
  if t.heap_size = Array.length t.times then heap_grow t;
  let i = t.heap_size in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.slots.(i) <- s;
  t.heap_size <- i + 1;
  heap_sift_up t i

(* Restructure only — the caller owns the removed slot id. *)
let heap_remove_top t =
  let n = t.heap_size - 1 in
  t.heap_size <- n;
  if n > 0 then begin
    t.times.(0) <- t.times.(n);
    t.seqs.(0) <- t.seqs.(n);
    t.slots.(0) <- t.slots.(n);
    heap_sift_down t 0
  end

(* ---- slot table ---- *)

let grow_slots t =
  let cap = slot_capacity t in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nmeta = Array.make (ncap lsl 2) 0 in
  Array.blit t.slot_meta 0 nmeta 0 (cap lsl 2);
  t.slot_meta <- nmeta;
  let npayload = Array.make ncap no_payload in
  Array.blit t.slot_payload 0 npayload 0 cap;
  t.slot_payload <- npayload;
  (* Chain the new slots onto the free-list, lowest id on top so fresh
     queues hand out slot 0, 1, 2, ... in order. A zeroed metadata block is
     already [state_free] at generation 0. *)
  for s = ncap - 1 downto cap do
    set_next t s t.free_head;
    t.free_head <- s
  done

let release_slot t s =
  t.slot_payload.(s) <- no_payload;
  let gen = ((m_gs t s lsr 2) + 1) land gen_mask in
  set_gs t s (gen lsl 2) (* state_free *);
  set_next t s t.free_head;
  t.free_head <- s

(* ---- wheel ---- *)

let[@inline] occ_set t ~level j =
  let w = (level lsl occ_shift) lor (j lsr 5) in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (j land 31))

let[@inline] occ_clear t ~level j =
  let w = (level lsl occ_shift) lor (j lsr 5) in
  t.occ.(w) <- t.occ.(w) land lnot (1 lsl (j land 31))

(* First occupied slot of [level] with index >= [from], or -1. *)
let occ_next t ~level from =
  if from >= wheel_slots then -1
  else begin
    let base = level lsl occ_shift in
    let w0 = from lsr 5 in
    let bits =
      t.occ.(base lor w0) land (0xFFFFFFFF lsl (from land 31)) land 0xFFFFFFFF
    in
    if bits <> 0 then (w0 lsl 5) lor ntz32 bits
    else begin
      let res = ref (-1) in
      let w = ref (w0 + 1) in
      while !res < 0 && !w < occ_words do
        let b = t.occ.(base lor !w) in
        if b <> 0 then res := (!w lsl 5) lor ntz32 b else incr w
      done;
      !res
    end
  end

(* Level for a time at-or-ahead of the cursor: the highest bit-group of
   [time lxor cur], or [-1] when the time is outside the wheel window
   (beyond the cursor's aligned 2^33 block). The xor mapping guarantees
   the slot index at the chosen level differs from the cursor's, i.e. the
   slot is strictly ahead and will be expired when the cursor crosses it. *)
let[@inline] wheel_level_of t time =
  let x = time lxor t.cur in
  if x < 1 lsl slot_bits then 0
  else if x < 1 lsl (2 * slot_bits) then 1
  else if x < 1 lsl (3 * slot_bits) then 2
  else -1

let wheel_append t s ~time ~level =
  let j = (time lsr (level * slot_bits)) land slot_mask in
  let idx = (level lsl slot_bits) lor j in
  set_next t s (-1);
  let tail = t.wheel_tail.(idx) in
  if tail < 0 then begin
    t.wheel_head.(idx) <- s;
    occ_set t ~level j
  end
  else set_next t tail s;
  t.wheel_tail.(idx) <- s;
  t.level_count.(level) <- t.level_count.(level) + 1;
  t.wheel_count <- t.wheel_count + 1

(* Route a pending slot to the wheel or the overflow tier. *)
let insert_event t s ~time ~seq =
  if time < t.cur then heap_push t ~time ~seq s
  else
    let level = wheel_level_of t time in
    if level < 0 then heap_push t ~time ~seq s
    else wheel_append t s ~time ~level

let push t ~time payload =
  if t.free_head < 0 then grow_slots t;
  let s = t.free_head in
  t.free_head <- m_next t s;
  t.slot_payload.(s) <- Obj.repr payload;
  let base = s lsl 2 in
  Array.unsafe_set t.slot_meta base time;
  let seq = t.next_seq in
  Array.unsafe_set t.slot_meta (base + 1) seq;
  t.next_seq <- seq + 1;
  let gs = Array.unsafe_get t.slot_meta (base + 3) in
  Array.unsafe_set t.slot_meta (base + 3) (gs lor state_pending);
  t.live <- t.live + 1;
  insert_event t s ~time ~seq;
  (s lsl gen_bits) lor (gs lsr 2)

let cancel t h =
  let s = handle_slot h in
  if s < slot_capacity t then begin
    let gs = m_gs t s in
    if gs lsr 2 = handle_gen h && gs land 3 = state_pending then begin
      set_gs t s ((gs land lnot 3) lor state_cancelled);
      (* The tombstone stays chained until the cursor (or a cascade) reaches
         it, but the closure is collectible right away. *)
      t.slot_payload.(s) <- no_payload;
      t.live <- t.live - 1;
      t.dead <- t.dead + 1
    end
  end

(* Move every entry of a level-l slot one tier down: the cursor has entered
   the slot, so each entry now maps strictly below [level] (or dispatches
   at level 0 on the rescan). Tombstones are released instead of moved. *)
let cascade_slot t ~level idx =
  let n = ref 0 in
  let s = ref t.wheel_head.(idx) in
  t.wheel_head.(idx) <- -1;
  t.wheel_tail.(idx) <- -1;
  occ_clear t ~level (idx land slot_mask);
  while !s >= 0 do
    let next = m_next t !s in
    incr n;
    if m_state t !s = state_pending then begin
      (* The cursor just entered this slot, so every entry maps below
         [level] and at-or-ahead of the cursor: append straight to the
         wheel, skipping [insert_event]'s past/overflow routing. *)
      let time = m_time t !s in
      wheel_append t !s ~time ~level:(wheel_level_of t time)
    end
    else begin
      release_slot t !s;
      t.dead <- t.dead - 1
    end;
    s := next
  done;
  t.level_count.(level) <- t.level_count.(level) - !n;
  t.wheel_count <- t.wheel_count - !n;
  t.cascades <- t.cascades + 1

(* Drop tombstones from one chain, preserving order of the survivors. *)
let purge_chain t ~level idx =
  let head = ref (-1) and tail = ref (-1) and dropped = ref 0 in
  let s = ref t.wheel_head.(idx) in
  while !s >= 0 do
    let next = m_next t !s in
    if m_state t !s = state_pending then begin
      if !tail < 0 then head := !s else set_next t !tail !s;
      set_next t !s (-1);
      tail := !s
    end
    else begin
      release_slot t !s;
      incr dropped
    end;
    s := next
  done;
  t.wheel_head.(idx) <- !head;
  t.wheel_tail.(idx) <- !tail;
  if !head < 0 then occ_clear t ~level (idx land slot_mask);
  t.level_count.(level) <- t.level_count.(level) - !dropped;
  t.wheel_count <- t.wheel_count - !dropped;
  t.dead <- t.dead - !dropped

(* Pull overflow entries whose time has entered the wheel window (and shed
   cancelled heap tops). The heap is (time, seq)-min ordered, so stopping
   at the first out-of-window or past top loses nothing: a past top
   precedes the whole wheel and pops directly from the heap. *)
let heap_refill t =
  let continue = ref true in
  while !continue && t.heap_size > 0 do
    let s = t.slots.(0) in
    if m_state t s <> state_pending then begin
      heap_remove_top t;
      release_slot t s;
      t.dead <- t.dead - 1
    end
    else
      let tm = t.times.(0) in
      if tm >= t.cur && tm lxor t.cur < window then begin
        heap_remove_top t;
        wheel_append t s ~time:tm ~level:(wheel_level_of t tm)
      end
      else continue := false
  done

(* Ensure the earliest pending event is exposed, advancing the cursor and
   cascading as needed. Returns [`Empty], [`Heap] (the heap top — a past
   event — is earliest; the cursor does not move backwards for it), or
   [`Wheel] (the level-0 slot at [cur land slot_mask] holds the earliest
   events, every one pending at exactly time [cur]). *)
let rec find_next t =
  heap_refill t;
  if t.heap_size > 0 && t.times.(0) < t.cur then `Heap
  else if t.wheel_count = 0 then begin
    if t.heap_size = 0 then `Empty
    else begin
      (* Whole wheel empty: jump the cursor to the far-future heap top so
         the refill pass can adopt it. *)
      t.cur <- t.times.(0);
      find_next t
    end
  end
  else begin
    (* Level 0: first occupied tick at or ahead of the cursor in the
       current wrap, located through the occupancy bitmap. Tombstone-only
       chains are purged in passing (which clears their bit), so the
       cursor never strands a dead entry behind itself. *)
    let found = ref (-1) in
    if t.level_count.(0) > 0 then
      if t.dead = 0 then
        (* No tombstones anywhere: an occupied slot holds only pending
           entries, so the first set bit is the answer — no purge walk. *)
        found := occ_next t ~level:0 (t.cur land slot_mask)
      else begin
        let j = ref (occ_next t ~level:0 (t.cur land slot_mask)) in
        while !found < 0 && !j >= 0 do
          purge_chain t ~level:0 !j;
          if t.wheel_head.(!j) >= 0 then found := !j
          else j := occ_next t ~level:0 (!j + 1)
        done
      end;
    match !found with
    | j when j >= 0 ->
        t.cur <- t.cur land lnot slot_mask lor j;
        `Wheel
    | _ ->
        (* Lower levels strictly precede higher ones (level l entries all
           fall inside the cursor's current level-(l+1) slot), so the first
           occupied slot of the lowest occupied level is the next work:
           enter it and cascade. *)
        let level = ref 1 and idx = ref (-1) in
        while !idx < 0 && !level < levels do
          let l = !level in
          if t.level_count.(l) > 0 then begin
            let shift = l * slot_bits in
            idx := occ_next t ~level:l ((t.cur lsr shift land slot_mask) + 1)
          end;
          if !idx < 0 then incr level
        done;
        if !idx < 0 then
          (* The level-0 purge walk above may have dropped the wheel's last
             tombstones, emptying it mid-scan. Retry from the top so the
             empty-wheel branch can jump the cursor to a far-future heap
             top (or report a genuinely empty queue). *)
          if t.wheel_count = 0 then find_next t
          else `Empty (* unreachable while wheel_count > 0 *)
        else begin
          let l = !level in
          let shift = l * slot_bits in
          let above = lnot ((1 lsl (shift + slot_bits)) - 1) in
          t.cur <- t.cur land above lor (!idx lsl shift);
          cascade_slot t ~level:l ((l lsl slot_bits) lor !idx);
          find_next t
        end
  end

(* ---- dispatch ---- *)

(* Insertion sort by seq: batches are near-sorted (chains append in push
   order; only a cascade or refill lands an older event behind a newer
   same-tick one), so this is one comparison per element in the common
   case — and allocation-free always. *)
let sort_batch t n =
  let b = t.batch in
  for i = 1 to n - 1 do
    let s = b.(i) in
    let key = m_seq t s in
    let j = ref (i - 1) in
    while !j >= 0 && m_seq t b.(!j) > key do
      b.(!j + 1) <- b.(!j);
      decr j
    done;
    b.(!j + 1) <- s
  done

let[@inline] payload_exn t s =
  let p = Array.unsafe_get t.slot_payload s in
  assert (p != no_payload);
  Obj.obj p

(* Claim the level-0 chain at the cursor tick into the batch scratch. The
   chain was purged by [find_next], so every claimed entry is pending. *)
let claim_batch t idx =
  let n = ref 0 in
  let s = ref t.wheel_head.(idx) in
  while !s >= 0 do
    if !n >= Array.length t.batch then begin
      let ncap = max 16 (2 * Array.length t.batch) in
      let nb = Array.make ncap 0 in
      Array.blit t.batch 0 nb 0 !n;
      t.batch <- nb
    end;
    t.batch.(!n) <- !s;
    incr n;
    s := m_next t !s
  done;
  t.wheel_head.(idx) <- -1;
  t.wheel_tail.(idx) <- -1;
  occ_clear t ~level:0 idx;
  t.level_count.(0) <- t.level_count.(0) - !n;
  t.wheel_count <- t.wheel_count - !n;
  !n

(* Return unclaimed batch entries to their chain after a capped dispatch
   (they keep their pending state; the next batch re-sorts anyway). *)
let unclaim_batch t idx =
  for i = t.batch_len - 1 downto t.batch_pos do
    let s = t.batch.(i) in
    set_next t s t.wheel_head.(idx);
    t.wheel_head.(idx) <- s;
    if t.wheel_tail.(idx) < 0 then t.wheel_tail.(idx) <- s;
    t.level_count.(0) <- t.level_count.(0) + 1;
    t.wheel_count <- t.wheel_count + 1
  done;
  if t.wheel_head.(idx) >= 0 then occ_set t ~level:0 idx;
  t.batch_pos <- 0;
  t.batch_len <- 0;
  t.batch_active <- false

(* [max_events] is a required label: an optional argument given a computed
   value boxes a [Some] per call, which alone would cost the engine drain
   ~2 minor words/event. *)
let drain_batch t ~max_events f =
  if max_events <= 0 then 0
  else if t.batch_active then
    invalid_arg "Event_queue.drain_batch: nested drain from a dispatch callback"
  else
    match find_next t with
    | `Empty -> 0
    | `Heap ->
        (* Past events pop straight off the overflow heap in (time, seq)
           order; a callback pushing at the same past instant lands back on
           the heap top and joins the batch, just as repeated pops would. *)
        let time = t.times.(0) in
        let n = ref 0 in
        let continue = ref true in
        while !continue do
          if t.heap_size = 0 || !n >= max_events then continue := false
          else begin
            let s = t.slots.(0) in
            if m_state t s <> state_pending then begin
              heap_remove_top t;
              release_slot t s;
              t.dead <- t.dead - 1
            end
            else if t.times.(0) <> time then continue := false
            else begin
              let p = payload_exn t s in
              heap_remove_top t;
              release_slot t s;
              t.live <- t.live - 1;
              f time p;
              incr n
            end
          end
        done;
        !n
    | `Wheel -> (
        let time = t.cur in
        let idx = time land slot_mask in
        let head = t.wheel_head.(idx) in
        (* Issue the payload load alongside the chain-link load: the two
           are independent, and overlapping them hides one of the two
           cache misses a dispatch costs on a cold slot. *)
        let p0 = Array.unsafe_get t.slot_payload head in
        if m_next t head < 0 then begin
          (* Single-entry tick — the overwhelmingly common case on sparse
             wheels: dispatch straight off the chain, skipping the batch
             scratch and sort. [find_next] purged the chain, so the entry
             is pending. *)
          t.wheel_head.(idx) <- -1;
          t.wheel_tail.(idx) <- -1;
          occ_clear t ~level:0 idx;
          t.level_count.(0) <- t.level_count.(0) - 1;
          t.wheel_count <- t.wheel_count - 1;
          assert (p0 != no_payload);
          let p = Obj.obj p0 in
          release_slot t head;
          t.live <- t.live - 1;
          t.batch_active <- true;
          (try f time p
           with exn ->
             t.batch_active <- false;
             raise exn);
          t.batch_active <- false;
          1
        end
        else begin
          let m = claim_batch t idx in
          sort_batch t m;
          t.batch_len <- m;
          t.batch_pos <- 0;
          t.batch_active <- true;
          let n = ref 0 in
          (try
             while t.batch_pos < t.batch_len && !n < max_events do
               let s = t.batch.(t.batch_pos) in
               t.batch_pos <- t.batch_pos + 1;
               (* Recheck: a callback earlier in this batch may have
                  cancelled this entry — it must not fire, exactly as under
                  one-at-a-time popping. *)
               if m_state t s = state_pending then begin
                 let p = payload_exn t s in
                 release_slot t s;
                 t.live <- t.live - 1;
                 f time p;
                 incr n
               end
               else begin
                 release_slot t s;
                 t.dead <- t.dead - 1
               end
             done
           with exn ->
             unclaim_batch t idx;
             raise exn);
          unclaim_batch t idx;
          !n
        end)

let pop_into t f = drain_batch t ~max_events:1 f > 0

let pop t =
  let out = ref None in
  if pop_into t (fun time p -> out := Some (time, p)) then !out else None

let peek_time_or t ~default =
  match find_next t with
  | `Empty -> default
  | `Heap -> t.times.(0)
  | `Wheel -> t.cur

let peek_time t =
  match find_next t with
  | `Empty -> None
  | `Heap -> Some t.times.(0)
  | `Wheel -> Some t.cur

(* ---- invariant checking (the simulation sanitizer's substrate view) ---- *)

let invariant_violations t =
  let bad = ref [] in
  let report fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  let cap = slot_capacity t in
  if Array.length t.slot_meta <> cap lsl 2 || Array.length t.slot_payload <> cap
  then report "slot-table arrays disagree on capacity %d" cap;
  let hcap = Array.length t.times in
  if Array.length t.seqs <> hcap || Array.length t.slots <> hcap then
    report "heap arrays disagree on capacity %d" hcap;
  if t.heap_size < 0 || t.heap_size > hcap then
    report "heap size %d outside [0, capacity %d]" t.heap_size hcap;
  if t.wheel_count < 0 then report "wheel count %d negative" t.wheel_count;
  if t.cur < 0 then report "wheel cursor %d negative" t.cur;
  let referenced = Array.make (max cap 1) false in
  let pending = ref 0 in
  let see where s =
    if s < 0 || s >= cap then begin
      report "%s references bad slot %d" where s;
      false
    end
    else begin
      if referenced.(s) then report "slot %d referenced more than once" s;
      referenced.(s) <- true;
      (match m_state t s with
      | st when st = state_pending ->
          incr pending;
          if t.slot_payload.(s) == no_payload then
            report "pending slot %d lost its payload" s
      | st when st = state_cancelled ->
          if t.slot_payload.(s) != no_payload then
            report "cancelled slot %d retains its payload" s
      | _ -> report "%s references freed slot %d" where s);
      true
    end
  in
  (* Overflow heap: order + membership. *)
  for i = 1 to t.heap_size - 1 do
    let parent = (i - 1) / 4 in
    if heap_before t i parent then
      report
        "heap order broken at entry %d (time %d seq %d before parent time %d \
         seq %d)"
        i t.times.(i) t.seqs.(i) t.times.(parent) t.seqs.(parent)
  done;
  for i = 0 to t.heap_size - 1 do
    let s = t.slots.(i) in
    if see "heap" s then begin
      if m_time t s <> t.times.(i) || m_seq t s <> t.seqs.(i) then
        report "heap entry %d disagrees with slot %d on (time, seq)" i s;
      (* Heap entries are past or out-of-window; an in-window future entry
         belongs to the wheel (refill runs before every dispatch, so this
         is only sampled between drains — where the invariant holds). *)
      if
        t.times.(i) >= t.cur
        && t.times.(i) lxor t.cur < window
        && not t.batch_active
      then
        report "heap entry %d (time %d) inside the wheel window (cur %d)" i
          t.times.(i) t.cur
    end
  done;
  (* Wheel chains: geometry + hygiene. Walks are bounded by [cap + 1] so a
     link cycle reports instead of hanging. *)
  let counted_levels = Array.make levels 0 in
  let wheel_total = ref 0 in
  for level = 0 to levels - 1 do
    let shift = level * slot_bits in
    for j = 0 to wheel_slots - 1 do
      let idx = (level lsl slot_bits) lor j in
      let s = ref t.wheel_head.(idx) in
      let last = ref (-1) in
      let steps = ref 0 in
      while !s >= 0 && !steps <= cap do
        if see (Printf.sprintf "wheel L%d slot %d" level j) !s then begin
          let tm = m_time t !s in
          if tm lsr shift land slot_mask <> j then
            report "wheel L%d slot %d holds time %d (wrong slot index)" level j
              tm;
          if tm < t.cur then
            report "wheel L%d slot %d holds past time %d (cur %d)" level j tm
              t.cur
          else if tm lxor t.cur >= 1 lsl (shift + slot_bits) then
            report "wheel L%d slot %d holds time %d outside the level range"
              level j tm
          else if level > 0 && tm lxor t.cur < 1 lsl shift then
            report
              "wheel L%d slot %d holds time %d that belongs to a lower level"
              level j tm
        end;
        incr steps;
        counted_levels.(level) <- counted_levels.(level) + 1;
        incr wheel_total;
        last := !s;
        s := if !s >= 0 && !s < cap then m_next t !s else -1
      done;
      if !steps > cap then report "wheel L%d slot %d chain cycles" level j;
      if t.wheel_tail.(idx) <> !last then
        report "wheel L%d slot %d tail pointer is stale" level j;
      let bit =
        t.occ.((level lsl occ_shift) lor (j lsr 5)) lsr (j land 31) land 1
      in
      if (bit = 1) <> (t.wheel_head.(idx) >= 0) then
        report "wheel L%d slot %d occupancy bit disagrees with its chain" level
          j;
      if level > 0 && j = t.cur lsr shift land slot_mask && !steps > 0 then
        report "wheel L%d cursor slot %d is occupied (missed cascade)" level j
    done
  done;
  for level = 0 to levels - 1 do
    if counted_levels.(level) <> t.level_count.(level) then
      report "level %d count %d disagrees with %d chained entries" level
        t.level_count.(level)
        counted_levels.(level)
  done;
  if !wheel_total <> t.wheel_count then
    report "wheel count %d disagrees with %d chained entries" t.wheel_count
      !wheel_total;
  (* In-flight batch entries: claimed off their chain but not yet
     dispatched — still pending, still owed to the live count. *)
  if t.batch_active then
    for i = t.batch_pos to t.batch_len - 1 do
      ignore (see "in-flight batch" t.batch.(i))
    done
  else if t.batch_len <> 0 || t.batch_pos <> 0 then
    report "batch scratch not reset (%d/%d)" t.batch_pos t.batch_len;
  if !pending <> t.live then
    report "live count %d disagrees with %d pending entries" t.live !pending;
  (* Free-list: exactly the unreferenced slots, each clean. *)
  let free = ref 0 in
  let s = ref t.free_head in
  while !s >= 0 && !free <= cap do
    if !s >= cap then report "free-list references bad slot %d" !s
    else begin
      if referenced.(!s) then
        report "slot %d is both chained and on the free-list" !s;
      if m_state t !s <> state_free then
        report "free-list slot %d is not marked free" !s;
      if t.slot_payload.(!s) != no_payload then
        report "vacated slot %d retains a stale payload" !s
    end;
    incr free;
    s := if !s < cap then m_next t !s else -1
  done;
  let expected_free =
    cap - t.heap_size - !wheel_total
    - (if t.batch_active then t.batch_len - t.batch_pos else 0)
  in
  if !free <> expected_free then
    report "free-list holds %d slots, expected %d" !free expected_free;
  List.rev !bad

module Unsafe = struct
  let skew_live t delta = t.live <- t.live + delta
end
