type state = Pending | Fired | Cancelled

type handle = { mutable state : state }

type 'a entry = {
  time : Sim_time.t;
  seq : int;
  payload : 'a;
  handle : handle;
}

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots >= [size] hold stale entries kept only to satisfy the
     array type; they are never read. *)
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = 0 }
let is_empty t = t.live = 0
let length t = t.live
let is_live h = h.state = Pending

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t ~time payload =
  let handle = { state = Pending } in
  let entry = { time; seq = t.next_seq; payload; handle } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  handle

let cancel t handle =
  if handle.state = Pending then begin
    handle.state <- Cancelled;
    t.live <- t.live - 1
  end

let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end

let rec pop t =
  if t.size = 0 then None
  else
    let top = t.heap.(0) in
    remove_top t;
    match top.handle.state with
    | Cancelled -> pop t
    | Fired -> pop t
    | Pending ->
        top.handle.state <- Fired;
        t.live <- t.live - 1;
        Some (top.time, top.payload)

let rec peek_time t =
  if t.size = 0 then None
  else
    let top = t.heap.(0) in
    if top.handle.state = Pending then Some top.time
    else begin
      remove_top t;
      peek_time t
    end
