type state = Pending | Fired | Cancelled

type handle = { mutable state : state }

type 'a entry = {
  time : Sim_time.t;
  seq : int;
  mutable payload : 'a option;
      (* [None] only for the shared filler entry; a real entry always holds
         [Some] until it leaves the heap. The option lets the queue own a
         polymorphic filler, so vacated slots never retain a payload. *)
  handle : handle;
}

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] slots >= [size] always hold [filler], so popped entries (and
     their payload closures) become collectible the moment they leave the
     heap — see the Weak-based regression test. *)
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  filler : 'a entry;
}

let create () =
  let filler =
    { time = Sim_time.zero; seq = -1; payload = None; handle = { state = Cancelled } }
  in
  { heap = [||]; size = 0; next_seq = 0; live = 0; filler }

let is_empty t = t.live = 0
let length t = t.live
let is_live h = h.state = Pending

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nheap = Array.make ncap t.filler in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t ~time payload =
  let handle = { state = Pending } in
  let entry = { time; seq = t.next_seq; payload = Some payload; handle } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  handle

let cancel t handle =
  if handle.state = Pending then begin
    handle.state <- Cancelled;
    t.live <- t.live - 1
  end

let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- t.filler;
  if t.size > 1 then sift_down t 0

let rec pop t =
  if t.size = 0 then None
  else
    let top = t.heap.(0) in
    remove_top t;
    match top.handle.state with
    | Cancelled -> pop t
    | Fired -> pop t
    | Pending -> (
        top.handle.state <- Fired;
        t.live <- t.live - 1;
        match top.payload with
        | Some p -> Some (top.time, p)
        | None -> assert false)

let rec peek_time t =
  if t.size = 0 then None
  else
    let top = t.heap.(0) in
    if top.handle.state = Pending then Some top.time
    else begin
      remove_top t;
      peek_time t
    end

(* ---- invariant checking (the simulation sanitizer's substrate view) ---- *)

let invariant_violations t =
  let bad = ref [] in
  let report fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  let cap = Array.length t.heap in
  if t.size < 0 || t.size > cap then
    report "size %d outside [0, capacity %d]" t.size cap;
  if t.live < 0 || t.live > t.size then
    report "live count %d outside [0, size %d]" t.live t.size;
  for i = 1 to t.size - 1 do
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then
      report "heap order broken at slot %d (time %d seq %d before parent time %d seq %d)"
        i t.heap.(i).time t.heap.(i).seq t.heap.(parent).time t.heap.(parent).seq
  done;
  let pending = ref 0 in
  for i = 0 to t.size - 1 do
    if t.heap.(i).handle.state = Pending then incr pending;
    if t.heap.(i).payload = None then report "entry at slot %d lost its payload" i
  done;
  if !pending <> t.live then
    report "live count %d disagrees with %d pending entries" t.live !pending;
  for i = t.size to cap - 1 do
    if t.heap.(i) != t.filler then report "vacated slot %d retains a stale entry" i
  done;
  List.rev !bad

module Unsafe = struct
  let skew_live t delta = t.live <- t.live + delta
end
