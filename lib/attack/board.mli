(** Shared time-report board.

    The buffer the probers' Time Reporters write and Time Comparers read
    (§III-B1): one slot per core holding the core's latest report of the
    shared timer. It lives in normal-world memory, so reading another core's
    slot crosses the cache-coherence fabric; the comparer therefore observes
    each report with a sampled {e staleness} — the cross-core reading delay
    the paper identifies as the driver of the probing threshold (§IV-B2,
    Table II). *)

type t

val create :
  platform:Satin_hw.Platform.t -> period:Satin_engine.Sim_time.t -> t
(** [period] is the probing round period; it parameterizes the staleness
    distribution (longer sleeps → colder caches → larger delays). *)

val period : t -> Satin_engine.Sim_time.t

val report : t -> core:int -> unit
(** Time Reporter: store "now" into the core's slot. *)

val last_report : t -> core:int -> Satin_engine.Sim_time.t
(** The true latest report (no read delay) — for tests. *)

val observed_age : t -> reader:int -> target:int -> staleness_scale:float -> float
(** Time Comparer's view: seconds elapsed since [target]'s report as seen
    from [reader], including a sampled cross-core staleness multiplied by
    [staleness_scale] (1.0 for kernel-level probers; larger for the
    user-level prober whose reads cross more layers). *)

val lateness : t -> reader:int -> target:int -> staleness_scale:float -> float
(** [observed_age - period]: how much later than the expected cadence the
    target's report appears. Under benign conditions this is bounded by the
    probing threshold; a core held in the secure world drives it upward by
    the full missed-report gap. *)

val reports_count : t -> core:int -> int
