(** User-level multi-thread prober (§III-B1).

    The stealthy variant: ordinary CFS threads, one pinned per core, that
    need no kernel privilege and leave no kernel-text trace. Each probing
    round (every [period], 8 s in the paper) every thread wakes and runs a
    {e burst} of report/compare iterations — the paper's "child-thread keeps
    reporting back the corresponding core's availability" — then sleeps
    until the next round to stay inconspicuous.

    During a burst each thread re-reports every [burst_step] and compares
    all peers' report ages: a peer whose report is older than [threshold]
    has lost its core to the secure world ([time_i > time_x +
    Tns_threshold], §III-B1). A peer that never manages its first report
    of the round by [warmup] is flagged too (its core was already taken
    when the round began). Because the threads ride the fair scheduler
    behind arbitrary load, the threshold must absorb CFS dispatch delays,
    which is why it is coarser than KProber's — the paper measures
    [Tns_delay] < 5.97×10⁻³ s, amply below the 8.04×10⁻² s full-kernel
    check it needs to spot. *)

type config = {
  period : Satin_engine.Sim_time.t; (** probing round period (8 s in §III-B1) *)
  burst_len : int; (** report/compare iterations per round *)
  burst_step : Satin_engine.Sim_time.t; (** sleep between iterations *)
  threshold : float; (** detection threshold, seconds *)
  warmup : Satin_engine.Sim_time.t;
      (** grace for a peer's first report of the round *)
}

val default_config : config
(** 8 s rounds, 60 × 2 ms bursts, 5.97×10⁻³ s threshold, 50 ms warmup. *)

type t

val deploy : Satin_kernel.Kernel.t -> config -> t
(** Spawns the n pinned CFS probe threads. *)

val board : t -> Board.t
val on_suspect : t -> (Kprober.detection -> unit) -> unit
val suspected : t -> core:int -> bool
val detections : t -> Kprober.detection list

val lateness_trace : t -> (int * float) Satin_engine.Trace.t
val set_record_lateness : t -> bool -> unit

val staleness_scale : float
(** How much dearer a user-space cross-core read is than a kernel one in
    the staleness model. Isolated over-threshold readings (the Table II
    delay tail) are debounced: a core is flagged only after two consecutive
    late observations, or a missed first report. *)

val retire : t -> unit
