module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Memory = Satin_hw.Memory
module World = Satin_hw.World
module Cycle_model = Satin_hw.Cycle_model
module Kernel = Satin_kernel.Kernel
module Syscall_table = Satin_kernel.Syscall_table

type state = Dormant | Armed | Hiding | Hidden | Rearming

let state_to_string = function
  | Dormant -> "dormant"
  | Armed -> "armed"
  | Hiding -> "hiding"
  | Hidden -> "hidden"
  | Rearming -> "rearming"

let evil_pointer = 0xdeadbeef41414141L

type t = {
  platform : Platform.t;
  syscalls : Syscall_table.t;
  prng : Prng.t;
  cleanup_core : Cpu.t;
  addr : int;
  mutable original : string;
  mutable evil : string;
  mutable state : state;
  mutable armed_since : Sim_time.t option;
  mutable uptime : Sim_time.t;
  mutable hides : int;
  mutable rearms : int;
  mutable last_hide : Sim_time.t option;
  mutable op_epoch : int; (* cancels in-flight progressive writes *)
}

let bytes_of_int64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Bytes.to_string b

let create kernel ?target_addr ~cleanup_core () =
  let platform = kernel.Kernel.platform in
  if cleanup_core < 0 || cleanup_core >= Platform.ncores platform then
    invalid_arg "Rootkit.create: unknown cleanup core";
  let addr =
    match target_addr with
    | Some a -> a
    | None -> Syscall_table.gettid_addr kernel.Kernel.syscalls
  in
  {
    platform;
    syscalls = kernel.Kernel.syscalls;
    prng = Platform.split_prng platform;
    cleanup_core = Platform.core platform cleanup_core;
    addr;
    original = "";
    evil = bytes_of_int64 evil_pointer;
    state = Dormant;
    armed_since = None;
    uptime = Sim_time.zero;
    hides = 0;
    rearms = 0;
    last_hide = None;
    op_epoch = 0;
  }

let state t = t.state
let is_armed t = t.state = Armed
let target_addr t = t.addr
let hides t = t.hides
let rearms t = t.rearms
let last_hide_duration t = t.last_hide

let now t = Engine.now t.platform.Platform.engine

let memory t = t.platform.Platform.memory

let note_armed t = t.armed_since <- Some (now t)

let note_clean t =
  match t.armed_since with
  | Some since ->
      t.uptime <- Sim_time.add t.uptime (Sim_time.diff (now t) since);
      t.armed_since <- None
  | None -> ()

let attack_uptime t =
  match t.armed_since with
  | Some since -> Sim_time.add t.uptime (Sim_time.diff (now t) since)
  | None -> t.uptime

let arm t =
  if t.state <> Dormant then invalid_arg "Rootkit.arm: not dormant";
  t.original <-
    Bytes.to_string
      (Memory.read_bytes (memory t) ~world:World.Normal ~addr:t.addr ~len:8);
  Memory.write_string (memory t) ~world:World.Normal ~addr:t.addr t.evil;
  t.state <- Armed;
  note_armed t

let hijacked_now t =
  t.original <> ""
  && Bytes.to_string
       (Memory.read_bytes (memory t) ~world:World.Secure ~addr:t.addr ~len:8)
     <> t.original

let recover_duration t =
  Cycle_model.sample_time t.prng
    (t.platform.Platform.cycle.Cycle_model.recover_8bytes
       (Cpu.core_type t.cleanup_core))

(* Write [content] progressively, one byte every total/8, as a sequential
   chain of kernel work. The cleanup thread prefers [cleanup_core] (whose
   type sets its speed) but, like any normal-world thread, migrates when
   that core is stolen — so a byte only stalls while EVERY core is in the
   secure world. A bumped [op_epoch] abandons the chain (a hide overriding
   an in-flight re-arm). *)
let progressive_write t content ~on_done =
  t.op_epoch <- t.op_epoch + 1;
  let epoch = t.op_epoch in
  let engine = t.platform.Platform.engine in
  let total = recover_duration t in
  let per_byte = Sim_time.ns (total / 8) in
  let stall_poll = Sim_time.us 100 in
  let rec write_byte i =
    if t.op_epoch = epoch then begin
      if Array.for_all Cpu.in_secure t.platform.Platform.cores then
        ignore (Engine.schedule engine ~after:stall_poll (fun () -> write_byte i))
      else begin
        Memory.write_byte (memory t) ~world:World.Normal ~addr:(t.addr + i)
          (Char.code content.[i]);
        if i < 7 then
          ignore (Engine.schedule engine ~after:per_byte (fun () -> write_byte (i + 1)))
        else on_done ()
      end
    end
  in
  ignore (Engine.schedule engine ~after:per_byte (fun () -> write_byte 0))

let start_hide t ?(on_hidden = fun () -> ()) () =
  (* Legal from Armed, and from Rearming: a probe signal mid-re-arm aborts
     the re-arm and reverses it. *)
  if t.state = Armed || t.state = Rearming then begin
    t.state <- Hiding;
    let started = now t in
    progressive_write t t.original ~on_done:(fun () ->
        t.state <- Hidden;
        t.hides <- t.hides + 1;
        t.last_hide <- Some (Sim_time.diff (now t) started);
        note_clean t;
        on_hidden ())
  end

let start_rearm t ?(on_armed = fun () -> ()) () =
  if t.state = Hidden then begin
    t.state <- Rearming;
    (* "At least one malicious byte in place" starts at the first
       progressive write, not at completion (hijacked_now drives it). *)
    let poll = Sim_time.us 500 in
    let rec watch_first_byte () =
      if t.state = Rearming then begin
        if hijacked_now t then note_armed t
        else
          ignore
            (Engine.schedule t.platform.Platform.engine ~after:poll
               watch_first_byte)
      end
    in
    watch_first_byte ();
    progressive_write t t.evil ~on_done:(fun () ->
        t.state <- Armed;
        t.rearms <- t.rearms + 1;
        if t.armed_since = None then note_armed t;
        on_armed ())
  end


