module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Cycle_model = Satin_hw.Cycle_model
module Cache = Satin_cache.Cache
module Kernel = Satin_kernel.Kernel
module Task = Satin_kernel.Task

type fidelity = Abstract | Prime_probe | Evict_reload

let fidelity_to_string = function
  | Abstract -> "abstract"
  | Prime_probe -> "prime+probe"
  | Evict_reload -> "evict+reload"

let fidelity_of_string = function
  | "abstract" -> Some Abstract
  | "prime+probe" | "prime-probe" -> Some Prime_probe
  | "evict+reload" | "evict-reload" -> Some Evict_reload
  | _ -> None

type config = {
  fidelity : fidelity;
  period : Sim_time.t;
  eviction_lag : Sim_time.t;
  noise_rate_hz : float;
  hit_latency_s : float;
  miss_latency_s : float;
  monitored_sets : int;
  pp_threshold : float;
  er_region : (int * int) option;
}

let default_config =
  {
    fidelity = Abstract;
    period = Sim_time.us 200;
    eviction_lag = Sim_time.us 100;
    noise_rate_hz = 0.02;
    hit_latency_s = 2.0e-8;
    miss_latency_s = 1.4e-7;
    monitored_sets = 8;
    pp_threshold = 0.5;
    er_region = None;
  }

type detection = {
  det_cluster : int;
  det_time : Sim_time.t;
  det_latency_s : float;
  det_noise : bool;
}

type t = {
  platform : Platform.t;
  config : config;
  prng : Prng.t;
  clusters : int array array; (* cluster -> member core ids *)
  (* Prime+Probe: per cluster, [monitored_sets] eviction sets (line-address
     arrays) in the cluster's private attacker window. *)
  pp_sets : int array array array;
  (* Evict+Reload: per cluster, the watched victim lines and, aligned with
     them, the eviction set that flushes each one. *)
  er_targets : int array array;
  er_evsets : int array array array;
  primed_since : Sim_time.t array;
  warmed : bool array; (* modeled modes: first round only primes *)
  suspected : bool array;
  mutable suspect_hooks : (detection -> unit) list;
  mutable clear_hooks : (cluster:int -> unit) list;
  mutable detections : detection list; (* newest first *)
  mutable false_alarms : int;
  mutable running : bool;
}

let clusters_of_platform platform = Platform.clusters platform
let cluster_of_core platform ~core = Platform.cluster_of_core platform ~core

let now t = Engine.now t.platform.Platform.engine

(* Did any cluster core spend >= eviction_lag in the secure world since the
   set was last primed? The abstract mode's detector — and the modeled
   modes' ground-truth noise classifier. *)
let evicted_since t ~cluster =
  let since = t.primed_since.(cluster) in
  Array.exists
    (fun core ->
      let cpu = Platform.core t.platform core in
      let overlap =
        if Cpu.in_secure cpu then
          match Cpu.last_entry_time cpu with
          | Some entry -> Sim_time.diff (now t) (Sim_time.max entry since)
          | None -> Sim_time.zero
        else
          match Cpu.last_entry_time cpu, Cpu.last_exit_time cpu with
          | Some entry, Some exit when exit > since ->
              Sim_time.diff exit (Sim_time.max entry since)
          | _ -> Sim_time.zero
      in
      overlap >= t.config.eviction_lag)
    t.clusters.(cluster)

let fire_suspect t ~cluster ~latency ~noise =
  let det =
    { det_cluster = cluster; det_time = now t; det_latency_s = latency;
      det_noise = noise }
  in
  t.detections <- det :: t.detections;
  if noise then t.false_alarms <- t.false_alarms + 1;
  t.suspected.(cluster) <- true;
  List.iter (fun f -> f det) t.suspect_hooks

let fire_clear t ~cluster =
  if t.suspected.(cluster) then begin
    t.suspected.(cluster) <- false;
    List.iter (fun f -> f ~cluster) t.clear_hooks
  end

(* ---- Abstract: the residency heuristic (the pre-cache model) ---- *)

let probe_abstract t ~cluster =
  let evicted = evicted_since t ~cluster in
  let noise =
    (not evicted)
    && Prng.bernoulli t.prng
         (t.config.noise_rate_hz *. Sim_time.to_sec_f t.config.period)
  in
  t.primed_since.(cluster) <- now t;
  if evicted || noise then
    let latency =
      t.config.miss_latency_s *. Prng.lognormal t.prng ~mu:0.0 ~sigma:0.1
    in
    fire_suspect t ~cluster ~latency ~noise
  else fire_clear t ~cluster

(* ---- Modeled modes: timing real accesses against the hierarchy ---- *)

let probe_core t ~cluster = t.clusters.(cluster).(0)

(* Mean observed per-access latency for a round that was served [counts] =
   (l1, l2, mem) times per level: one sampled deviate per level actually
   exercised, as a round-aggregate timing would show it. *)
let round_latency t (l1, l2, mem) =
  let total = l1 + l2 + mem in
  if total = 0 then 0.0
  else begin
    let cycle = t.platform.Platform.cycle in
    let part n level =
      if n = 0 then 0.0
      else float_of_int n *. Cycle_model.load_latency t.prng cycle ~level
    in
    (part l1 0 +. part l2 1 +. part mem 2) /. float_of_int total
  end

(* Prime+Probe: touching the whole eviction set is simultaneously this
   round's probe (timing which lines fell out of the L2 since last round)
   and the next round's prime. A full miss means the line had to come back
   from DRAM — somebody streamed through the shared L2. L1-only evictions
   (same-core task footprints) still hit L2 and are not counted, which is
   what keeps the channel cluster-grained. *)
let probe_prime_probe t ~cluster =
  let core = probe_core t ~cluster in
  let cache = t.platform.Platform.cache in
  let l1 = ref 0 and l2 = ref 0 and mem = ref 0 in
  Array.iter
    (fun set_addrs ->
      Array.iter
        (fun addr ->
          match Cache.touch cache ~core ~addr with
          | 0 -> incr l1
          | 1 -> incr l2
          | _ -> incr mem)
        set_addrs)
    t.pp_sets.(cluster);
  Cache.publish cache;
  (* The very first round only establishes the prime: the sets were never
     resident, so their cold misses say nothing about anyone else. *)
  if not t.warmed.(cluster) then begin
    t.warmed.(cluster) <- true;
    t.primed_since.(cluster) <- now t
  end
  else begin
    let total = !l1 + !l2 + !mem in
    let miss_fraction =
      if total = 0 then 0.0 else float_of_int !mem /. float_of_int total
    in
    let alarm = miss_fraction > t.config.pp_threshold in
    let noise = alarm && not (evicted_since t ~cluster) in
    t.primed_since.(cluster) <- now t;
    if alarm then
      fire_suspect t ~cluster ~latency:(round_latency t (!l1, !l2, !mem)) ~noise
    else fire_clear t ~cluster
  end

(* Evict+Reload: reload each watched kernel line (a hit means someone —
   the scan front — touched it since we last flushed it), then flush it
   again by priming its eviction set. Under AutoLock the flush fails
   whenever the line sits in the scanning core's L1, so the signal decays
   into stale "hits" — the false-alarm explosion the cache_fidelity
   experiment tabulates. *)
let probe_evict_reload t ~cluster =
  let core = probe_core t ~cluster in
  let cache = t.platform.Platform.cache in
  let hot = ref 0 and l1 = ref 0 and l2 = ref 0 and mem = ref 0 in
  Array.iteri
    (fun i target ->
      (match Cache.touch cache ~core ~addr:target with
      | 0 ->
          incr l1;
          incr hot
      | 1 ->
          incr l2;
          incr hot
      | _ -> incr mem);
      Array.iter
        (fun addr -> ignore (Cache.touch cache ~core ~addr))
        t.er_evsets.(cluster).(i))
    t.er_targets.(cluster);
  Cache.publish cache;
  if not t.warmed.(cluster) then begin
    t.warmed.(cluster) <- true;
    t.primed_since.(cluster) <- now t
  end
  else begin
    let alarm = !hot > 0 in
    let noise = alarm && not (evicted_since t ~cluster) in
    t.primed_since.(cluster) <- now t;
    if alarm then
      fire_suspect t ~cluster ~latency:(round_latency t (!l1, !l2, !mem)) ~noise
    else fire_clear t ~cluster
  end

let probe t ~cluster =
  match t.config.fidelity with
  | Abstract -> probe_abstract t ~cluster
  | Prime_probe -> probe_prime_probe t ~cluster
  | Evict_reload -> probe_evict_reload t ~cluster

let probe_body t ~cluster task =
  ignore task;
  if not t.running then { Task.cpu = Sim_time.zero; after = (fun () -> Task.Exit) }
  else
    {
      (* Priming + timing the sets is a few microseconds of loads; the
         per-access latencies shape the observation, not the schedule. *)
      Task.cpu = Sim_time.us 4;
      after =
        (fun () ->
          probe t ~cluster;
          Task.Sleep t.config.period);
    }

(* Each cluster's prober owns a 16 MiB attacker window above the simulated
   DRAM; eviction-set members come from it. Monitored L2 set [i] gets a +i
   skew on the even stride so distinct monitored sets also land in
   distinct L1 sets — an attacker lays its eviction sets out precisely so
   its own priming does not thrash its own L1 (and, under AutoLock, so
   each whole set can stay L1-resident and pinned). *)
let pp_window cluster = (1 lsl 26) + (cluster lsl 24)

let monitored_l2_sets cache n =
  let sets = Cache.l2_sets cache in
  let stride = max 1 (sets / n) in
  Array.init n (fun i -> ((i * stride) + i) mod sets)

let build_pp_sets cache ~clusters ~n =
  Array.mapi
    (fun cluster _ ->
      let base = pp_window cluster in
      Array.map
        (fun l2_set -> Cache.eviction_set cache ~l2_set ~base)
        (monitored_l2_sets cache n))
    clusters

let build_er cache ~clusters ~n ~region:(rbase, rlen) =
  let line = Cache.line_size cache in
  let stride = max line (rlen / n / line * line) in
  let targets =
    Array.map (fun _ -> Array.init n (fun i -> rbase + (i * stride))) clusters
  in
  let evsets =
    Array.mapi
      (fun cluster targets ->
        Array.map
          (fun target ->
            Cache.eviction_set cache
              ~l2_set:(Cache.l2_set_of_addr cache ~addr:target)
              ~base:(pp_window cluster))
          targets)
      targets
  in
  targets, evsets

let deploy kernel config =
  let platform = kernel.Kernel.platform in
  let cache = platform.Platform.cache in
  let clusters = Platform.clusters platform in
  let n = Array.length clusters in
  let pp_sets =
    match config.fidelity with
    | Prime_probe -> build_pp_sets cache ~clusters ~n:config.monitored_sets
    | Abstract | Evict_reload -> Array.make n [||]
  in
  let er_targets, er_evsets =
    match config.fidelity with
    | Evict_reload ->
        let region =
          match config.er_region with
          | Some r -> r
          | None ->
              let layout = kernel.Kernel.layout in
              ( Satin_kernel.Layout.base layout,
                Satin_kernel.Layout.total_size layout )
        in
        build_er cache ~clusters ~n:config.monitored_sets ~region
    | Abstract | Prime_probe -> Array.make n [||], Array.make n [||]
  in
  let t =
    {
      platform;
      config;
      prng = Platform.split_prng platform;
      clusters;
      pp_sets;
      er_targets;
      er_evsets;
      primed_since = Array.make n Sim_time.zero;
      warmed = Array.make n false;
      suspected = Array.make n false;
      suspect_hooks = [];
      clear_hooks = [];
      detections = [];
      false_alarms = 0;
      running = true;
    }
  in
  Array.iteri
    (fun cluster members ->
      let task =
        Task.create
          ~name:(Printf.sprintf "cacheprobe/%d" cluster)
          ~policy:(Task.Rt_fifo Task.rt_priority_max) ~affinity:members.(0)
          ~body:(probe_body t ~cluster)
          ()
      in
      Kernel.spawn kernel task)
    clusters;
  t

let on_suspect t f = t.suspect_hooks <- t.suspect_hooks @ [ f ]
let on_clear t f = t.clear_hooks <- t.clear_hooks @ [ f ]
let suspected t ~cluster = t.suspected.(cluster)
let detections t = List.rev t.detections
let false_alarms t = t.false_alarms
let retire t = t.running <- false
