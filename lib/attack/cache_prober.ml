module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Cycle_model = Satin_hw.Cycle_model
module Kernel = Satin_kernel.Kernel
module Task = Satin_kernel.Task

type config = {
  period : Sim_time.t;
  eviction_lag : Sim_time.t;
  noise_rate_hz : float;
  hit_latency_s : float;
  miss_latency_s : float;
}

let default_config =
  {
    period = Sim_time.us 200;
    eviction_lag = Sim_time.us 100;
    noise_rate_hz = 0.02;
    hit_latency_s = 2.0e-8;
    miss_latency_s = 1.4e-7;
  }

type detection = {
  det_cluster : int;
  det_time : Sim_time.t;
  det_latency_s : float;
  det_noise : bool;
}

type t = {
  platform : Platform.t;
  config : config;
  prng : Prng.t;
  clusters : int array array; (* cluster -> member core ids *)
  primed_since : Sim_time.t array;
  suspected : bool array;
  mutable suspect_hooks : (detection -> unit) list;
  mutable clear_hooks : (cluster:int -> unit) list;
  mutable detections : detection list; (* newest first *)
  mutable false_alarms : int;
  mutable running : bool;
}

(* Juno clustering: consecutive cores of the same type share an L2. *)
let clusters_of_platform platform =
  let types =
    Array.map Cpu.core_type platform.Platform.cores
  in
  let groups = ref [] and current = ref [ 0 ] in
  for i = 1 to Array.length types - 1 do
    if Cycle_model.equal_core_type types.(i) types.(i - 1) then
      current := i :: !current
    else begin
      groups := List.rev !current :: !groups;
      current := [ i ]
    end
  done;
  groups := List.rev !current :: !groups;
  Array.of_list (List.rev_map Array.of_list !groups)

let cluster_of_core ~core = if core <= 3 then 0 else 1

let now t = Engine.now t.platform.Platform.engine

(* Did any cluster core spend >= eviction_lag in the secure world since the
   set was last primed? *)
let evicted_since t ~cluster =
  let since = t.primed_since.(cluster) in
  Array.exists
    (fun core ->
      let cpu = Platform.core t.platform core in
      let overlap =
        if Cpu.in_secure cpu then
          match Cpu.last_entry_time cpu with
          | Some entry -> Sim_time.diff (now t) (Sim_time.max entry since)
          | None -> Sim_time.zero
        else
          match Cpu.last_entry_time cpu, Cpu.last_exit_time cpu with
          | Some entry, Some exit when exit > since ->
              Sim_time.diff exit (Sim_time.max entry since)
          | _ -> Sim_time.zero
      in
      overlap >= t.config.eviction_lag)
    t.clusters.(cluster)

let probe t ~cluster =
  let evicted = evicted_since t ~cluster in
  let noise =
    (not evicted)
    && Prng.bernoulli t.prng
         (t.config.noise_rate_hz *. Sim_time.to_sec_f t.config.period)
  in
  t.primed_since.(cluster) <- now t;
  if evicted || noise then begin
    let latency =
      t.config.miss_latency_s *. Prng.lognormal t.prng ~mu:0.0 ~sigma:0.1
    in
    let det =
      { det_cluster = cluster; det_time = now t; det_latency_s = latency;
        det_noise = noise }
    in
    t.detections <- det :: t.detections;
    if noise then t.false_alarms <- t.false_alarms + 1;
    t.suspected.(cluster) <- true;
    List.iter (fun f -> f det) t.suspect_hooks
  end
  else if t.suspected.(cluster) then begin
    t.suspected.(cluster) <- false;
    List.iter (fun f -> f ~cluster) t.clear_hooks
  end

let probe_body t ~cluster task =
  ignore task;
  if not t.running then { Task.cpu = Sim_time.zero; after = (fun () -> Task.Exit) }
  else
    {
      (* Priming + timing a set is a few microseconds of loads. *)
      Task.cpu = Sim_time.us 4;
      after =
        (fun () ->
          probe t ~cluster;
          Task.Sleep t.config.period);
    }

let deploy kernel config =
  let platform = kernel.Kernel.platform in
  let clusters = clusters_of_platform platform in
  let n = Array.length clusters in
  let t =
    {
      platform;
      config;
      prng = Platform.split_prng platform;
      clusters;
      primed_since = Array.make n Sim_time.zero;
      suspected = Array.make n false;
      suspect_hooks = [];
      clear_hooks = [];
      detections = [];
      false_alarms = 0;
      running = true;
    }
  in
  Array.iteri
    (fun cluster members ->
      let task =
        Task.create
          ~name:(Printf.sprintf "cacheprobe/%d" cluster)
          ~policy:(Task.Rt_fifo Task.rt_priority_max) ~affinity:members.(0)
          ~body:(probe_body t ~cluster)
          ()
      in
      Kernel.spawn kernel task)
    clusters;
  t

let on_suspect t f = t.suspect_hooks <- t.suspect_hooks @ [ f ]
let on_clear t f = t.clear_hooks <- t.clear_hooks @ [ f ]
let suspected t ~cluster = t.suspected.(cluster)
let detections t = List.rev t.detections
let false_alarms t = t.false_alarms
let retire t = t.running <- false
