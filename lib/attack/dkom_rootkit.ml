module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Platform = Satin_hw.Platform
module World = Satin_hw.World
module Cycle_model = Satin_hw.Cycle_model
module Kernel = Satin_kernel.Kernel
module Proc_table = Satin_kernel.Proc_table

type state = Visible | Hidden_state | Relinking | Unlinking

type t = {
  platform : Platform.t;
  table : Proc_table.t;
  pid : int;
  prober : Kprober.t;
  prng : Prng.t;
  mutable state : state;
  mutable relinks : int;
  mutable unlinks : int;
  mutable running : bool;
}

(* Splicing a PCB back in (or out) is two pointer stores plus finding the
   node again under preemption: sub-millisecond, far cheaper than the
   syscall-table restore. *)
let splice_cost = Cycle_model.triple ~min_s:3.0e-4 ~avg_s:5.0e-4 ~max_s:7.0e-4

let now t = Engine.now t.platform.Platform.engine

let after_splice t f =
  ignore
    (Engine.schedule t.platform.Platform.engine
       ~after:(Cycle_model.sample_time t.prng splice_cost)
       f)

let rec on_suspect t (_ : Kprober.detection) =
  if t.running && t.state = Hidden_state then begin
    (* The introspection is coming: make the process visible again so the
       cross-view finds nothing inconsistent. *)
    t.state <- Relinking;
    after_splice t (fun () ->
        Proc_table.relink_tasks t.table ~world:World.Normal ~pid:t.pid;
        t.relinks <- t.relinks + 1;
        t.state <- Visible;
        maybe_hide t)
  end

and maybe_hide t =
  if t.running && t.state = Visible && not (Kprober.suspected_any t.prober) then begin
    t.state <- Unlinking;
    after_splice t (fun () ->
        Proc_table.unlink_tasks t.table ~world:World.Normal ~pid:t.pid;
        t.unlinks <- t.unlinks + 1;
        t.state <- Hidden_state)
  end

let on_clear t ~core:_ = maybe_hide t

let deploy kernel table ~pid ~prober_config =
  let platform = kernel.Kernel.platform in
  let prober = Kprober.deploy kernel prober_config in
  let t =
    {
      platform;
      table;
      pid;
      prober;
      prng = Platform.split_prng platform;
      state = Visible;
      relinks = 0;
      unlinks = 0;
      running = false;
    }
  in
  Kprober.on_suspect prober (on_suspect t);
  Kprober.on_clear prober (on_clear t);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    ignore (now t);
    maybe_hide t
  end

let stop t =
  t.running <- false;
  Kprober.retire t.prober

let is_hidden t = t.state = Hidden_state
let relinks t = t.relinks
let unlinks t = t.unlinks
let prober t = t.prober
