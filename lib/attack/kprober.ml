module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Trace = Satin_engine.Trace
module Platform = Satin_hw.Platform
module Kernel = Satin_kernel.Kernel
module Task = Satin_kernel.Task
module Timer_irq = Satin_kernel.Timer_irq
module Vector_table = Satin_kernel.Vector_table
module Obs = Satin_obs.Obs

type reporter_kind = Tick_reporter | Rt_reporter

type config = {
  period : Sim_time.t;
  reporter : reporter_kind;
  threshold : float;
  watched_cores : int list;
}

let default_config =
  {
    period = Sim_time.us 200;
    reporter = Rt_reporter;
    threshold = 1.8e-3;
    watched_cores = [];
  }

type detection = {
  det_core : int;
  det_time : Sim_time.t;
  det_lateness : float;
}

type t = {
  kernel : Kernel.t;
  platform : Platform.t;
  config : config;
  watched : int list;
  board : Board.t;
  suspected : bool array;
  mutable suspect_hooks : (detection -> unit) list;
  mutable clear_hooks : (core:int -> unit) list;
  mutable detections : detection list; (* newest first *)
  staleness_scale : float;
  lateness_trace : (int * float) Trace.t;
  last_probe : Sim_time.t option array; (* per-core previous probe instant *)
  mutable record_lateness : bool;
  mutable running : bool;
  mutable hijacked_vector : bool;
  mutable tick_hook : Timer_irq.hook_id option;
  mutable spinners : Task.t list;
}

let now t = Engine.now t.platform.Platform.engine

(* Comparer pass executed from core [reader]: evaluate every other watched
   core's report age against the expected cadence. *)
let compare_pass t ~reader =
  List.iter
    (fun target ->
      if target <> reader && Board.reports_count t.board ~core:target > 0 then begin
        let lateness =
          Board.lateness t.board ~reader ~target ~staleness_scale:t.staleness_scale
        in
        if t.record_lateness then
          Trace.record t.lateness_trace (now t) (target, lateness);
        if lateness > t.config.threshold then begin
          if not t.suspected.(target) then begin
            t.suspected.(target) <- true;
            let det =
              { det_core = target; det_time = now t; det_lateness = lateness }
            in
            t.detections <- det :: t.detections;
            if Obs.active () then begin
              Obs.incr "kprober.suspects";
              Obs.instant ~time:det.det_time ~track:target ~cat:"attack"
                ~args:[ ("lateness_s", Satin_obs.Json.float lateness) ]
                "kprober-suspect"
            end;
            List.iter (fun f -> f det) t.suspect_hooks
          end
        end
        else if t.suspected.(target) && lateness < t.config.threshold /. 2.0 then begin
          t.suspected.(target) <- false;
          Obs.incr "kprober.clears";
          List.iter (fun f -> f ~core:target) t.clear_hooks
        end
      end)
    t.watched

let next_boundary t =
  Sim_time.until_next_multiple ~period:t.config.period (now t)

let note_probe t ~core =
  if Obs.active () then begin
    let instant = now t in
    (match t.last_probe.(core) with
    | Some prev ->
        Obs.observe_time "kprober.probe_gap"
          ~labels:[ ("core", string_of_int core) ]
          (Sim_time.diff instant prev)
    | None -> ());
    t.last_probe.(core) <- Some instant
  end

let rt_probe_body t ~core ~reports task =
  ignore task;
  if not t.running then { Task.cpu = Sim_time.zero; after = (fun () -> Task.Exit) }
  else
    {
      Task.cpu = Sim_time.us 2;
      after =
        (fun () ->
          if reports then Board.report t.board ~core;
          note_probe t ~core;
          compare_pass t ~reader:core;
          Task.Sleep (next_boundary t));
    }

let deploy kernel config =
  let platform = kernel.Kernel.platform in
  let watched =
    match config.watched_cores with
    | [] -> List.init (Platform.ncores platform) (fun i -> i)
    | cores -> cores
  in
  if List.length watched < 2 then
    invalid_arg
      "Kprober.deploy: need at least two watched cores (a lone reporter has \
       no peer to compare against)";
  let board_period =
    match config.reporter with
    | Rt_reporter -> config.period
    | Tick_reporter -> Timer_irq.period kernel.Kernel.tick
  in
  let t =
    {
      kernel;
      platform;
      config;
      watched;
      board = Board.create ~platform ~period:board_period;
      suspected = Array.make (Platform.ncores platform) false;
      suspect_hooks = [];
      clear_hooks = [];
      detections = [];
      (* Coherence traffic on the shared report buffer grows with the number
         of reporting cores; probing a single core sees roughly a quarter of
         the all-core threshold (§IV-B2, last paragraph). *)
      staleness_scale =
        (let k = List.length watched and n = Platform.ncores platform in
         sqrt (float_of_int (k - 1) /. float_of_int (max 1 (n - 1))));
      lateness_trace = Trace.create ();
      last_probe = Array.make (Platform.ncores platform) None;
      record_lateness = false;
      running = true;
      hijacked_vector = false;
      tick_hook = None;
      spinners = [];
    }
  in
  (match config.reporter with
  | Rt_reporter ->
      (* KProber-II: one pthread per watched core, SCHED_FIFO priority 99. *)
      List.iter
        (fun core ->
          let task =
            Task.create
              ~name:(Printf.sprintf "kprober2/%d" core)
              ~policy:(Task.Rt_fifo Task.rt_priority_max) ~affinity:core
              ~body:(rt_probe_body t ~core ~reports:true)
              ()
          in
          Kernel.spawn kernel task)
        watched
  | Tick_reporter ->
      (* KProber-I: hijack the IRQ vector (a detectable kernel-text write),
         report from the tick path, keep cores out of NO_HZ idle with
         spinners, and compare from RT threads (the paper's combination). *)
      Vector_table.hijack_irq kernel.Kernel.vectors ~world:Satin_hw.World.Normal;
      t.hijacked_vector <- true;
      t.tick_hook <-
        Some
          (Timer_irq.add_hook kernel.Kernel.tick (fun ~core ->
               if t.running && List.mem core t.watched then
                 Board.report t.board ~core));
      List.iter
        (fun core ->
          (* Like Kernel.spawn_spinner, but the hog exits on retire: the
             attacker removes its load generators with its other traces. *)
          let spinner =
            Task.create
              ~name:(Printf.sprintf "kprober1-spin/%d" core)
              ~policy:Task.Cfs ~affinity:core
              ~body:(fun _ ->
                if not t.running then
                  { Task.cpu = Sim_time.zero; after = (fun () -> Task.Exit) }
                else
                  { Task.cpu = Sim_time.us 1_000; after = (fun () -> Task.Reenter) })
              ()
          in
          Kernel.spawn kernel spinner;
          t.spinners <- spinner :: t.spinners;
          let task =
            Task.create
              ~name:(Printf.sprintf "kprober1-cmp/%d" core)
              ~policy:(Task.Rt_fifo Task.rt_priority_max) ~affinity:core
              ~body:(rt_probe_body t ~core ~reports:false)
              ()
          in
          Kernel.spawn kernel task)
        watched);
  t

let board t = t.board
let on_suspect t f = t.suspect_hooks <- t.suspect_hooks @ [ f ]
let on_clear t f = t.clear_hooks <- t.clear_hooks @ [ f ]
let suspected t ~core = t.suspected.(core)
let suspected_any t = Array.exists Fun.id t.suspected
let lateness_trace t = t.lateness_trace
let set_record_lateness t v = t.record_lateness <- v
let detections t = List.rev t.detections

let retire t =
  t.running <- false;
  if t.hijacked_vector then begin
    Vector_table.restore_irq t.kernel.Kernel.vectors ~world:Satin_hw.World.Normal;
    (match t.tick_hook with
    | Some id ->
        Timer_irq.remove_hook t.kernel.Kernel.tick id;
        t.tick_hook <- None
    | None -> ());
    t.hijacked_vector <- false
  end
