module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Trace = Satin_engine.Trace
module Platform = Satin_hw.Platform
module Kernel = Satin_kernel.Kernel
module Task = Satin_kernel.Task

type config = {
  period : Sim_time.t;
  burst_len : int;
  burst_step : Sim_time.t;
  threshold : float;
  warmup : Sim_time.t;
}

let default_config =
  {
    period = Sim_time.s 8;
    burst_len = 60;
    burst_step = Sim_time.ms 2;
    threshold = 5.97e-3;
    warmup = Sim_time.ms 50;
  }

let staleness_scale = 4.0

type t = {
  platform : Platform.t;
  config : config;
  board : Board.t;
  suspected : bool array;
  late_streak : int array; (* consecutive over-threshold observations *)
  round_start : Sim_time.t array; (* per-core view of its round's start *)
  mutable suspect_hooks : (Kprober.detection -> unit) list;
  mutable detections : Kprober.detection list;
  lateness_trace : (int * float) Trace.t;
  mutable record_lateness : bool;
  mutable running : bool;
}

let now t = Engine.now t.platform.Platform.engine

let compare_pass t ~reader =
  let n = Platform.ncores t.platform in
  let round_elapsed = Sim_time.diff (now t) t.round_start.(reader) in
  for target = 0 to n - 1 do
    if target <> reader && Board.reports_count t.board ~core:target > 0 then begin
      let age =
        Board.observed_age t.board ~reader ~target ~staleness_scale
      in
      (* A report from a previous round is only suspicious once the round is
         old enough that everyone should have reported (warmup); a fresh
         report is suspicious as soon as it exceeds the threshold. *)
      let stale_report = age > Sim_time.to_sec_f t.config.period /. 2.0 in
      let late =
        if stale_report then round_elapsed > t.config.warmup
        else age > t.config.threshold
      in
      if t.record_lateness && not stale_report then
        Trace.record t.lateness_trace (now t) (target, age);
      (* Debounce: a single over-threshold reading can be an isolated
         cross-core read delay (the Table II tail); a stalled core stays
         late on consecutive iterations. *)
      if late then t.late_streak.(target) <- t.late_streak.(target) + 1
      else t.late_streak.(target) <- 0;
      if t.late_streak.(target) >= 2 || (late && stale_report) then begin
        if not t.suspected.(target) then begin
          t.suspected.(target) <- true;
          let det =
            { Kprober.det_core = target; det_time = now t; det_lateness = age }
          in
          t.detections <- det :: t.detections;
          List.iter (fun f -> f det) t.suspect_hooks
        end
      end
      else if t.suspected.(target) && age < t.config.threshold /. 2.0 then
        t.suspected.(target) <- false
    end
  done

let next_boundary t =
  Sim_time.until_next_multiple ~period:t.config.period (now t)

(* Each thread cycles: wake at a round boundary, run [burst_len]
   report/compare iterations spaced [burst_step], then sleep to the next
   boundary. [iter] counts the position inside the burst. *)
let probe_body t ~core =
  let iter = ref 0 in
  fun task ->
    ignore task;
    if not t.running then { Task.cpu = Sim_time.zero; after = (fun () -> Task.Exit) }
    else
      {
        (* User-space work per iteration: clock syscall + shared buffer. *)
        Task.cpu = Sim_time.us 15;
        after =
          (fun () ->
            if !iter = 0 then t.round_start.(core) <- now t;
            Board.report t.board ~core;
            compare_pass t ~reader:core;
            incr iter;
            if !iter >= t.config.burst_len then begin
              iter := 0;
              Task.Sleep (next_boundary t)
            end
            else Task.Sleep t.config.burst_step);
      }

let deploy kernel config =
  let platform = kernel.Kernel.platform in
  let n = Platform.ncores platform in
  let t =
    {
      platform;
      config;
      (* Staleness parameterized by the burst step: reads inside a burst are
         warm; the long inter-round sleep only affects the first iteration,
         which the warmup rule covers anyway. *)
      board = Board.create ~platform ~period:config.burst_step;
      suspected = Array.make n false;
      late_streak = Array.make n 0;
      round_start = Array.make n Sim_time.zero;
      suspect_hooks = [];
      detections = [];
      lateness_trace = Trace.create ();
      record_lateness = false;
      running = true;
    }
  in
  for core = 0 to n - 1 do
    let task =
      Task.create
        ~name:(Printf.sprintf "uprober/%d" core)
        ~policy:Task.Cfs ~affinity:core
        ~body:(probe_body t ~core)
        ()
    in
    Kernel.spawn kernel task
  done;
  t

let board t = t.board
let on_suspect t f = t.suspect_hooks <- t.suspect_hooks @ [ f ]
let suspected t ~core = t.suspected.(core)
let detections t = List.rev t.detections
let lateness_trace t = t.lateness_trace
let set_record_lateness t v = t.record_lateness <- v
let retire t = t.running <- false
