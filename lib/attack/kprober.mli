(** KProber: kernel-level core-state prober (§III-C).

    Probes the CPU-availability side channel: when the secure world holds a
    core, that core's Time Reporter stops reporting, and any Time Comparer
    sees its report age grow past [period + threshold].

    Two reporter implementations, as in the paper:
    - {b KProber-I} (§III-C1): the Time Reporter is injected into the timer
      interrupt path by hijacking the IRQ exception vector — it runs at
      every tick (frequency ≥ HZ) but modifies kernel text, leaving a trace
      the defender can find. A spinner task per core defeats NO_HZ_IDLE.
    - {b KProber-II} (§III-C2): Time Reporter and Comparer run as
      SCHED_FIFO priority-99 threads that wake every [period]
      ([Tsleep] = 2×10⁻⁴ s in the paper) — no kernel-text modification.

    Comparers always run in the RT threads (the paper's evaluation combines
    a KProber-I reporter with a KProber-II comparer). *)

type reporter_kind = Tick_reporter | Rt_reporter

type config = {
  period : Satin_engine.Sim_time.t;
      (** probing round period ([Tns_sched]); 200 µs in the paper's attack *)
  reporter : reporter_kind;
  threshold : float;
      (** detection threshold in seconds; the paper uses its measured
          worst case, 1.8×10⁻³ s *)
  watched_cores : int list;
      (** cores to probe; [[]] means all (per-core threads are created for
          watched cores only — probing fewer cores lowers the observed
          threshold, §IV-B2) *)
}

val default_config : config
(** RT reporter, 200 µs period, 1.8 ms threshold, all cores. *)

type detection = {
  det_core : int;
  det_time : Satin_engine.Sim_time.t; (** when the comparer flagged it *)
  det_lateness : float; (** seconds past the expected cadence *)
}

type t

val deploy : Satin_kernel.Kernel.t -> config -> t
(** Creates and spawns the probe threads (and, for [Tick_reporter], hijacks
    the IRQ vector, registers the tick hook, and spawns per-core spinners).
    Probing begins immediately. *)

val board : t -> Board.t

val on_suspect : t -> (detection -> unit) -> unit
(** Fired when a watched core {e becomes} suspected (edge, not level). *)

val on_clear : t -> (core:int -> unit) -> unit
(** Fired when a suspected core reports again. *)

val suspected : t -> core:int -> bool
val suspected_any : t -> bool

val lateness_trace : t -> (int * float) Satin_engine.Trace.t
(** Every comparer evaluation's (target core, lateness) — the raw samples
    behind Table II and Figure 4. Empty unless recording is enabled. *)

val set_record_lateness : t -> bool -> unit
(** Off by default: long campaigns at 200 µs would accumulate tens of
    millions of samples. Enable for threshold-measurement experiments. *)

val detections : t -> detection list

val retire : t -> unit
(** Stop probing; for KProber-I also restore the IRQ vector and remove the
    tick hook (the attacker cleaning its preparation traces). *)
