module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Kernel = Satin_kernel.Kernel
module Obs = Satin_obs.Obs

type config = {
  prober : Kprober.config;
  cleanup_core : int;
  confirm_clear : Sim_time.t;
  target_addr : int option;
}

let default_config =
  {
    prober = Kprober.default_config;
    cleanup_core = 0;
    confirm_clear = Sim_time.ms 2;
    target_addr = None;
  }

type t = {
  platform : Platform.t;
  config : config;
  rootkit : Rootkit.t;
  prober : Kprober.t;
  mutable running : bool;
  mutable reaction_times : float list;
  mutable rearm_pending : Engine.handle option;
}

let now t = Engine.now t.platform.Platform.engine

let cancel_pending_rearm t =
  match t.rearm_pending with
  | Some h ->
      Engine.cancel t.platform.Platform.engine h;
      t.rearm_pending <- None
  | None -> ()

let schedule_rearm t =
  cancel_pending_rearm t;
  t.rearm_pending <-
    Some
      (Engine.schedule t.platform.Platform.engine ~after:t.config.confirm_clear
         (fun () ->
           t.rearm_pending <- None;
           if t.running && not (Kprober.suspected_any t.prober) then begin
             Obs.incr "evader.rearms";
             Rootkit.start_rearm t.rootkit ()
           end))

let on_suspect t (det : Kprober.detection) =
  if t.running then begin
    cancel_pending_rearm t;
    (* The defender entered the secure world det_lateness ago (minus the
       benign part); take the core's true entry time for the reaction
       metric when available. *)
    let entry =
      match Cpu.last_entry_time (Platform.core t.platform det.Kprober.det_core) with
      | Some e -> e
      | None -> det.Kprober.det_time
    in
    Rootkit.start_hide t.rootkit
      ~on_hidden:(fun () ->
        let reaction = Sim_time.to_sec_f (Sim_time.diff (now t) entry) in
        if Obs.active () then begin
          Obs.incr "evader.hides";
          Obs.observe "evader.hide_latency" reaction;
          Obs.instant ~time:(now t) ~track:t.config.cleanup_core ~cat:"attack"
            "hide-complete"
        end;
        t.reaction_times <- reaction :: t.reaction_times;
        (* The introspection round may already be over by the time the last
           byte is restored (SATIN's rounds are shorter than the hide);
           re-arm from here too, not only from the clear edge. *)
        if t.running && not (Kprober.suspected_any t.prober) then
          schedule_rearm t)
      ()
  end

let on_clear t ~core =
  ignore core;
  if t.running && (not (Kprober.suspected_any t.prober))
     && Rootkit.state t.rootkit = Rootkit.Hidden
  then schedule_rearm t

let deploy kernel config =
  let platform = kernel.Kernel.platform in
  let t =
    {
      platform;
      config;
      rootkit =
        Rootkit.create kernel ?target_addr:config.target_addr
          ~cleanup_core:config.cleanup_core ();
      prober = Kprober.deploy kernel config.prober;
      running = false;
      reaction_times = [];
      rearm_pending = None;
    }
  in
  Kprober.on_suspect t.prober (on_suspect t);
  Kprober.on_clear t.prober (on_clear t);
  t

let start t =
  if not t.running then begin
    t.running <- true;
    Rootkit.arm t.rootkit
  end

let rootkit t = t.rootkit
let prober t = t.prober
let hide_reaction_times t = List.rev t.reaction_times
let evasions t = Rootkit.hides t.rootkit

let stop t =
  t.running <- false;
  cancel_pending_rearm t;
  Kprober.retire t.prober
