(** Sample kernel-level persistent attack: GETTID hijack (§IV-A2).

    An APT rootkit that replaces the 8-byte GETTID entry in the syscall
    table with a pointer to malicious code. While armed it "collects"
    (accumulates attack uptime); when told to hide it restores the 8
    original bytes one by one, the whole restore taking the calibrated
    [Tns_recover] for the core running the cleanup (§IV-B2: 5.80 ms on A53,
    4.96 ms on A57). Re-arming after an all-clear takes a symmetric
    modification pass. *)

type state = Dormant | Armed | Hiding | Hidden | Rearming

val state_to_string : state -> string

type t

val create :
  Satin_kernel.Kernel.t -> ?target_addr:int -> cleanup_core:int -> unit -> t
(** [cleanup_core] is where the hide/re-arm code runs; its core type sets
    the recovery speed. [target_addr] defaults to the GETTID syscall-table
    entry; override it to study other attack placements (e.g. the exception
    vector near the start of the image). Raises [Invalid_argument] for an
    unknown core. *)

val state : t -> state
val is_armed : t -> bool

val arm : t -> unit
(** First installation: save the original entry and write the hijack
    (instantaneous; the interesting timing is the {e hide} path). Only legal
    from [Dormant]. *)

val start_hide : t -> ?on_hidden:(unit -> unit) -> unit -> unit
(** Begin restoring the 8 bytes progressively; [on_hidden] fires when the
    last byte is back. Legal from [Armed] and from [Rearming] (a probe
    signal mid-re-arm aborts the re-arm and reverses it); a no-op otherwise.
    The restore runs as normal-world kernel work: it stalls only while
    every core is held by the secure world (the cleanup thread migrates
    like any other when its core is stolen). *)

val start_rearm : t -> ?on_armed:(unit -> unit) -> unit -> unit
(** Re-install the hijack after an all-clear, byte by byte. Only legal from
    [Hidden] (no-op otherwise). *)

val hijacked_now : t -> bool
(** Whether the table currently differs from the original (any byte). *)

val target_addr : t -> int
(** Address of the first hijacked byte (for placing it in an area). *)

val hides : t -> int
val rearms : t -> int

val attack_uptime : t -> Satin_engine.Sim_time.t
(** Total time spent with at least one malicious byte in place — the APT's
    "collection" time. *)

val last_hide_duration : t -> Satin_engine.Sim_time.t option
(** Wall-clock duration of the last completed hide (includes any stalls
    while the cleanup core was unavailable). *)
