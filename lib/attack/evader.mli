(** TZ-Evader: the full evasion attack (§III-C).

    Wires a {!Kprober} to a {!Rootkit}: the moment any core is suspected of
    entering the secure world, the rootkit hides; once every core reports
    again (all-clear) and a confirmation delay passes, the rootkit re-arms
    and resumes collecting. Against a full-kernel-scan defense the hide
    almost always beats the scan front (the §IV-C race); against SATIN the
    area is finished before the hide completes. *)

type config = {
  prober : Kprober.config;
  cleanup_core : int; (** core running the hide/re-arm code *)
  confirm_clear : Satin_engine.Sim_time.t;
      (** how long after the all-clear before re-arming *)
  target_addr : int option;
      (** rootkit placement; [None] = the GETTID syscall-table entry *)
}

val default_config : config
(** KProber defaults, cleanup on core 0 (an A53, the paper's worst case for
    the attacker), 2 ms confirmation. *)

type t

val deploy : Satin_kernel.Kernel.t -> config -> t
(** Creates rootkit and prober. Call {!start} to arm. *)

val start : t -> unit
(** Arms the rootkit and begins reacting to probe events. *)

val rootkit : t -> Rootkit.t
val prober : t -> Kprober.t

val hide_reaction_times : t -> float list
(** Seconds from each defender world-entry to the completion of the
    corresponding hide (the attacker's realized [Tns_delay+Tns_recover]). *)

val evasions : t -> int
(** Completed hides (each one an evasion attempt). *)

val stop : t -> unit
