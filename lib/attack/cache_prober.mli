(** Cache-occupancy side-channel prober (the "other side channels" of the
    paper's §VI-C2).

    Instead of watching CPU availability, the attacker primes cache sets and
    times re-accesses: an introspection pass streams megabytes through the
    cluster's shared L2, evicting the primed lines, so a probe right after
    (or during) a scan sees miss latencies. Properties that differ from
    {!Kprober}:

    - {b faster}: no need to wait out the 1.8 ms availability threshold — a
      single probe round after ~100 µs of scanning already sees the
      eviction, so the reaction time is bounded by the probe period;
    - {b cluster-grained}: the Juno's L2 is per cluster (A53: cores 0–3,
      A57: cores 4–5), so the attacker learns the cluster, not the core;
    - {b retrospective}: evictions persist, so even a scan that finished
      between two probes is noticed (useful for schedule learning — which
      SATIN's randomized wake-ups deliberately spoil);
    - {b noisy}: ordinary memory traffic also evicts; the detector carries
      a false-alarm rate.

    Experiment E14 shows SATIN still wins against this faster channel: the
    hide starts ~3× sooner, but the scan front still crosses the tampered
    bytes before the restore lands. *)

type config = {
  period : Satin_engine.Sim_time.t; (** probe round period (default 200 µs) *)
  eviction_lag : Satin_engine.Sim_time.t;
      (** scanning time before the primed set is measurably evicted
          (default 100 µs) *)
  noise_rate_hz : float;
      (** benign-eviction false alarms per cluster per second (default 0.02) *)
  hit_latency_s : float; (** primed-set re-access when undisturbed (~20 ns) *)
  miss_latency_s : float; (** after eviction (~140 ns) *)
}

val default_config : config

type detection = {
  det_cluster : int; (** 0 = A53 cluster (cores 0–3), 1 = A57 (cores 4–5) *)
  det_time : Satin_engine.Sim_time.t;
  det_latency_s : float; (** observed probe latency *)
  det_noise : bool; (** true if this alarm was benign eviction (ground truth,
                        for experiment accounting; the attacker cannot tell) *)
}

type t

val deploy : Satin_kernel.Kernel.t -> config -> t
(** One priming/probing RT thread per cluster (on the cluster's first
    core). Probing starts immediately. *)

val on_suspect : t -> (detection -> unit) -> unit
(** Fired on each probe round that sees an evicted set (edge-triggered: the
    set is re-primed after every probe, so a long scan fires repeatedly at
    the probe period). *)

val on_clear : t -> (cluster:int -> unit) -> unit
(** Fired when a previously-evicted cluster probes clean again. *)

val suspected : t -> cluster:int -> bool
val detections : t -> detection list
val false_alarms : t -> int

val cluster_of_core : core:int -> int
(** The Juno r1 mapping (cores 0–3 → cluster 0, 4–5 → cluster 1) — a test
    convenience; the prober itself derives clusters from the platform's
    core types, so other topologies work without this helper. *)

val retire : t -> unit
