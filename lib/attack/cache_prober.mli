(** Cache-occupancy side-channel prober (the "other side channels" of the
    paper's §VI-C2), at three fidelity levels.

    An introspection pass streams megabytes through the cluster's shared
    L2, evicting whatever an attacker parked there; timing re-accesses
    leaks that the secure world ran. Properties that differ from
    {!Kprober}:

    - {b faster}: no need to wait out the 1.8 ms availability threshold — a
      single probe round after ~100 µs of scanning already sees the
      eviction, so the reaction time is bounded by the probe period;
    - {b cluster-grained}: the L2 is per cluster, so the attacker learns
      the cluster, not the core;
    - {b retrospective}: evictions persist, so even a scan that finished
      between two probes is noticed;
    - {b noisy}: ordinary memory traffic also evicts; the detector carries
      a false-alarm rate.

    The {!fidelity} knob selects how much of that is actually modeled:

    - {!Abstract} keeps the original residency heuristic: an alarm fires
      when any cluster core spent [eviction_lag] in the secure world since
      the last (notional) prime. No cache state involved.
    - {!Prime_probe} primes real eviction sets in the platform's modeled
      L1/L2 hierarchy and times the re-accesses with the calibrated
      per-level load latencies; a round alarms when the full-miss fraction
      exceeds [pp_threshold]. ARMageddon-style, and the mode AutoLock
      defeats: with the inclusive-L2 lock on, the attacker's L1-resident
      eviction sets are pinned against the scanning core, the scan evicts
      nothing, and detection collapses (see the cache_fidelity table).
    - {!Evict_reload} watches lines {e inside the scanned kernel image}:
      flush via eviction set, wait a period, reload — a fast reload means
      the scan front touched the line. Largely AutoLock-proof: a flush only
      fails while the scanning core's (transient) L1 window still holds the
      line. Its weakness is the {!Policy.Rand} policy, where single-pass
      eviction is unreliable and stale hits flood the channel with false
      alarms (the ARMageddon observation).

    Experiment E14 (mode {!Abstract}) shows SATIN still wins against this
    faster channel; the cache_fidelity experiment sweeps mode x replacement
    policy x AutoLock. *)

type fidelity = Abstract | Prime_probe | Evict_reload

val fidelity_to_string : fidelity -> string
val fidelity_of_string : string -> fidelity option

type config = {
  fidelity : fidelity;  (** default [Abstract] — existing scenarios as-is *)
  period : Satin_engine.Sim_time.t; (** probe round period (default 200 µs) *)
  eviction_lag : Satin_engine.Sim_time.t;
      (** [Abstract] detector / modeled-mode ground-truth classifier:
          secure-residency time that counts as a real eviction cause
          (default 100 µs) *)
  noise_rate_hz : float;
      (** [Abstract] only: benign-eviction false alarms per cluster per
          second (default 0.02); the modeled modes get their noise from
          actual task-footprint evictions *)
  hit_latency_s : float; (** [Abstract] primed-set re-access (~20 ns) *)
  miss_latency_s : float; (** [Abstract] after eviction (~140 ns) *)
  monitored_sets : int;
      (** modeled modes: eviction sets ([Prime_probe]) or watched kernel
          lines ([Evict_reload]) per cluster (default 8) *)
  pp_threshold : float;
      (** [Prime_probe]: alarm when the round's full-miss fraction exceeds
          this (default 0.5 — above the task-footprint noise floor, below
          a scan's clean sweep) *)
  er_region : (int * int) option;
      (** [Evict_reload]: [(base, len)] window whose lines are watched;
          [None] spreads the targets over the whole kernel image *)
}

val default_config : config

type detection = {
  det_cluster : int;
  det_time : Satin_engine.Sim_time.t;
  det_latency_s : float;
      (** observed mean per-access probe latency (modeled modes sample the
          calibrated per-level load latencies) *)
  det_noise : bool; (** true if no cluster core was secure-resident long
                        enough to explain the alarm (ground truth, for
                        experiment accounting; the attacker cannot tell) *)
}

type t

val deploy : Satin_kernel.Kernel.t -> config -> t
(** One priming/probing RT thread per cluster (on the cluster's first
    core). Probing starts immediately. Clusters come from the platform's
    computed topology, so any core mix works. *)

val on_suspect : t -> (detection -> unit) -> unit
(** Fired on each probe round that crosses the detection threshold
    (edge-triggered: sets are re-primed every probe round, so a long scan
    fires repeatedly at the probe period). *)

val on_clear : t -> (cluster:int -> unit) -> unit
(** Fired when a previously-suspected cluster probes clean again. *)

val suspected : t -> cluster:int -> bool
val detections : t -> detection list
val false_alarms : t -> int

val clusters_of_platform : Satin_hw.Platform.t -> int array array
(** The platform's cluster topology (same as {!Satin_hw.Platform.clusters}). *)

val cluster_of_core : Satin_hw.Platform.t -> core:int -> int
(** The cluster whose shared L2 [core]'s traffic lands in — derived from
    the platform's computed topology (works on any core mix, not just the
    Juno's 4+4 layout). *)

val retire : t -> unit
