(** Process-hiding DKOM rootkit with TZ-Evader reflexes.

    The second classic persistent attack, complementing the syscall hijack:
    a malicious process is unlinked from the all-tasks list
    ({!Satin_kernel.Proc_table.unlink_tasks}) but stays on the run queue —
    invisible to tasks-list walks, still executing. Like the byte-restoring
    evader it watches {!Kprober} and tries to {e relink} before an
    introspection can cross-view the lists, re-hiding on the all-clear.

    It loses harder than the syscall evader: a cross-view walk costs ~10⁻⁵ s
    from the moment the secure world starts, while merely noticing the
    world switch costs the attacker ~2×10⁻³ s — experiment E13. *)

type t

val deploy :
  Satin_kernel.Kernel.t ->
  Satin_kernel.Proc_table.t ->
  pid:int ->
  prober_config:Kprober.config ->
  t
(** The pid must already exist (runnable) in the table. *)

val start : t -> unit
(** Hide the process and begin reacting to probe events. *)

val stop : t -> unit

val is_hidden : t -> bool
val relinks : t -> int
val unlinks : t -> int
val prober : t -> Kprober.t

val splice_cost : Satin_hw.Cycle_model.triple
(** Time to splice the PCB in or out (sub-millisecond). *)
