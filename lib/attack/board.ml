module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Platform = Satin_hw.Platform
module Cycle_model = Satin_hw.Cycle_model

type t = {
  platform : Platform.t;
  prng : Prng.t;
  period : Sim_time.t;
  slots : Sim_time.t array;
  counts : int array;
  (* One staleness draw per target per probing round: the delay reflects the
     state of the target's report cacheline in this round, so every comparer
     reading it within the round sees the same delay. *)
  stale_window : int array;
  stale_sample : float array;
}

let create ~platform ~period =
  let n = Platform.ncores platform in
  {
    platform;
    prng = Platform.split_prng platform;
    period;
    slots = Array.make n Sim_time.zero;
    counts = Array.make n 0;
    stale_window = Array.make n (-1);
    stale_sample = Array.make n 0.0;
  }

let period t = t.period

let report t ~core =
  t.slots.(core) <- Engine.now t.platform.Platform.engine;
  t.counts.(core) <- t.counts.(core) + 1

let last_report t ~core = t.slots.(core)

let staleness_of t ~target =
  let now = Engine.now t.platform.Platform.engine in
  let window = now / max 1 t.period in
  if t.stale_window.(target) <> window then begin
    t.stale_window.(target) <- window;
    t.stale_sample.(target) <-
      Cycle_model.sample_cross_staleness t.prng t.platform.Platform.cycle
        ~period_s:(Sim_time.to_sec_f t.period)
  end;
  t.stale_sample.(target)

let observed_age t ~reader ~target ~staleness_scale =
  ignore reader;
  let now = Engine.now t.platform.Platform.engine in
  let age = Sim_time.to_sec_f (Sim_time.diff now t.slots.(target)) in
  age +. (staleness_of t ~target *. staleness_scale)

let lateness t ~reader ~target ~staleness_scale =
  observed_age t ~reader ~target ~staleness_scale
  -. Sim_time.to_sec_f t.period

let reports_count t ~core = t.counts.(core)
