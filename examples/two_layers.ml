(* The paper's Discussion (§VII-A/§VII-C) as a runnable demo: synchronous
   introspection alone, its silent bypass, and the asynchronous layer that
   catches what slipped through.

     dune exec examples/two_layers.exe *)

module Scenario = Satin.Scenario
module Sim_time = Satin_engine.Sim_time
module Memory = Satin_hw.Memory
module Sync_guard = Satin_introspect.Sync_guard
module Satin_def = Satin_introspect.Satin
module Alarm = Satin_introspect.Alarm
module Round = Satin_introspect.Round
module Rootkit = Satin_attack.Rootkit

let () =
  let s = Scenario.create ~seed:4 () in

  (* Trusted boot: the asynchronous layer enrolls its golden hashes while
     the image is still pristine (order matters — enrolling after a
     compromise would bless the attacker's bytes). *)
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 }
      ()
  in
  let sink = Alarm.create () in
  Alarm.attach_satin sink satin;
  print_endline "layer 2 (asynchronous): SATIN enrolled at trusted boot, tp = 1 s";

  (* Layer 1: SPROBES/TZ-RKP-style write protection of the invariant
     structures. *)
  let guard = Sync_guard.install s.Scenario.kernel in
  print_endline "layer 1 (synchronous): vector table + syscall table write-protected";

  (* A naive rootkit dies on the trap. *)
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  (try Rootkit.arm rk
   with Memory.Write_trapped { guard_name; _ } ->
     Printf.printf "naive hijack -> trapped inline by %s\n" guard_name);

  (* The attacker escalates (Sec VII-A, the KNOX bypass): a write-what-where
     exploit flips the AP bits of the guarded pages. No trap will ever fire
     again, and the guard's self-check still looks healthy. *)
  Sync_guard.ap_flip_exploit guard Sync_guard.Syscall_table;
  Rootkit.arm rk;
  Printf.printf
    "after AP-bit flip: hijack installed silently (traps logged: %d, hook 'registered': %b)\n"
    (Sync_guard.trapped_count guard)
    (Sync_guard.hook_registered guard Sync_guard.Syscall_table);

  Scenario.run_for s (Sim_time.s 25);
  Satin_def.stop satin;

  (match Alarm.alarms sink with
  | [] -> print_endline "no alarm (unexpected)"
  | alarm :: _ ->
      Printf.printf
        "ALARM at %.1f s: area %d, core %d, offsets %s — the state check caught what the transition check missed\n"
        (Sim_time.to_sec_f alarm.Alarm.time)
        alarm.Alarm.area_index alarm.Alarm.core
        (String.concat "," (List.map string_of_int alarm.Alarm.offsets)));
  Printf.printf "alarm chain verifies: %b (genesis %Lx)\n"
    (Alarm.verify_chain sink) (Alarm.genesis sink)
