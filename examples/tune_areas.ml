(* Area tuning for arbitrary kernels: given a kernel size and the timing of
   your platform, how should SATIN divide the image and how often must it
   wake up to meet a coverage goal?

     dune exec examples/tune_areas.exe -- [kernel_bytes] [tgoal_s]

   Defaults: the paper's kernel (11,916,240 B) and Tgoal = 152 s. *)

module Race = Satin.Race
module Layout = Satin_kernel.Layout
module Area = Satin_introspect.Area
module Sim_time = Satin_engine.Sim_time

let usage () =
  prerr_endline "usage: tune_areas [kernel_bytes] [tgoal_seconds]";
  exit 2

let () =
  let kernel_bytes =
    if Array.length Sys.argv > 1 then
      match int_of_string_opt Sys.argv.(1) with Some n when n > 0 -> n | _ -> usage ()
    else 11_916_240
  in
  let tgoal_s =
    if Array.length Sys.argv > 2 then
      match float_of_string_opt Sys.argv.(2) with
      | Some x when x > 0.0 -> x
      | _ -> usage ()
    else 152.0
  in
  let p = Race.paper_worst_case in
  let bound = Race.max_area_size p in
  Printf.printf "race parameters (worst case for the defender):\n";
  Printf.printf "  Ts_switch      %.2e s\n" p.Race.ts_switch;
  Printf.printf "  Ts_1byte       %.2e s (A57 fastest)\n" p.Race.ts_1byte;
  Printf.printf "  Tns_delay      %.2e s\n" (Race.tns_delay p);
  Printf.printf "  Tns_recover    %.2e s\n" p.Race.tns_recover;
  Printf.printf "  area bound     %d bytes (Equation 2)\n\n" bound;

  (* Build a synthetic System.map of the requested size and partition it. *)
  let areas_needed = (kernel_bytes + bound - 1) / bound in
  let layout =
    if kernel_bytes = Layout.paper_total_size then Layout.paper_layout ()
    else
      Layout.synthetic ~base:(2 * 1024 * 1024) ~total_size:kernel_bytes
        ~areas:(max 2 areas_needed) ~seed:99
  in
  let greedy = Area.partition layout ~bound in
  let canonical = Area.of_layout layout in
  let m = List.length canonical in
  Printf.printf "kernel: %d bytes\n" kernel_bytes;
  Printf.printf "minimum areas at the bound (greedy): %d\n" (List.length greedy);
  Printf.printf "canonical partition: %d areas, max %d B, min %d B\n" m
    (Area.max_size canonical) (Area.min_size canonical);
  List.iter
    (fun a ->
      let scan_ms =
        1000.0 *. Race.scan_time p ~bytes:a.Area.size
      in
      Printf.printf "  area %2d  %8d B  scan %6.2f ms  margin %6.2f ms\n"
        a.Area.index a.Area.size scan_ms
        ((Race.hide_time p *. 1000.0) -. scan_ms))
    canonical;

  let tp = tgoal_s /. float_of_int m in
  Printf.printf
    "\nfor Tgoal = %.0f s: tp = %.2f s; every core wakes about every %.1f s\n"
    tgoal_s tp (tp *. 6.0);
  let worst = Area.max_size canonical in
  if worst < bound then
    Printf.printf
      "all areas below the bound: a scan always beats the %.2f ms hide.\n"
      (Race.hide_time p *. 1000.0)
  else
    Printf.printf "WARNING: largest area (%d B) exceeds the bound (%d B)!\n" worst
      bound
