(* Quickstart: boot the simulated Juno r1, start SATIN, watch it scan.

   Run with:  dune exec examples/quickstart.exe *)

module Scenario = Satin.Scenario
module Sim_time = Satin_engine.Sim_time
module Satin_def = Satin_introspect.Satin
module Round = Satin_introspect.Round
module Area = Satin_introspect.Area

let () =
  (* 1. Build the whole platform in one call: six-core big.LITTLE machine,
     booted rich OS with an 11.9 MB kernel image, secure world, checker. *)
  let s = Scenario.create ~seed:1 () in

  (* 2. Install SATIN. Tgoal = 19 s over 19 areas gives one introspection
     round per second on average. *)
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 }
      ()
  in
  Printf.printf "SATIN installed: %d areas, tp = %s\n"
    (List.length (Satin_def.areas satin))
    (Sim_time.to_string (Satin_def.tp satin));

  (* 3. Print each introspection round as it completes. *)
  Satin_def.on_round satin (fun r ->
      Printf.printf "  [%7.3f s] core %d scanned area %2d (%6d B) in %s -> %s\n"
        (Sim_time.to_sec_f r.Round.started)
        r.Round.core r.Round.area_index r.Round.len
        (Sim_time.to_string r.Round.duration)
        (if Round.detected r then "TAMPERED" else "clean"));

  (* 4. Run 20 seconds of simulated time. *)
  Scenario.run_for s (Sim_time.s 20);

  Printf.printf "\nAfter 20 s: %d rounds, %d full kernel passes, %d alarms\n"
    (Satin_def.rounds_count satin)
    (Satin_def.full_passes satin)
    (List.length (Satin_def.alarms satin));

  (* 5. Now hijack the GETTID syscall entry and keep running: SATIN raises
     an alarm the next time the syscall table's area is scanned. *)
  let rootkit = Satin_attack.Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Satin_attack.Rootkit.arm rootkit;
  Printf.printf "\nRootkit armed (GETTID hijack, area %d). Running on...\n"
    (Area.find_containing (Satin_def.areas satin)
       ~addr:(Satin_attack.Rootkit.target_addr rootkit))
      .Area.index;
  Scenario.run_for s (Sim_time.s 25);

  match Satin_def.alarms satin with
  | [] -> print_endline "no alarm (unexpected)"
  | alarm :: _ ->
      Printf.printf "ALARM: area %d, %d modified bytes caught at offsets %s\n"
        alarm.Round.area_index
        (List.length alarm.Round.verdict.Satin_introspect.Checker.v_offsets)
        (String.concat ","
           (List.map string_of_int
              alarm.Round.verdict.Satin_introspect.Checker.v_offsets))
