(* SATIN vs TZ-Evader (the paper's Section VI story).

   Same attacker as in evasion_demo, but the defender now scans one small
   area per round at unpredictable instants on unpredictable cores. The
   attacker still notices every wake-up and still hides in ~6 ms — but the
   scan front crosses the tampered bytes ~3 ms into the round, before the
   restore lands. Run with:

     dune exec examples/satin_vs_evader.exe *)

module Scenario = Satin.Scenario
module Sim_time = Satin_engine.Sim_time
module Satin_def = Satin_introspect.Satin
module Round = Satin_introspect.Round
module Kprober = Satin_attack.Kprober
module Evader = Satin_attack.Evader
module Rootkit = Satin_attack.Rootkit

let () =
  let s = Scenario.create ~seed:3 () in
  let gantt = Satin.Gantt.record s.Scenario.platform in
  let markers = ref [] in
  (* Tgoal = 76 s -> tp = 4 s; a full pass of the 19 areas every ~76 s. *)
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 76 }
      ()
  in
  let evader =
    Evader.deploy s.Scenario.kernel
      {
        Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 500 };
      }
  in
  Satin_def.on_round satin (fun r ->
      if Round.detected r then
        markers :=
          { Satin.Gantt.m_time = r.Round.started; m_core = r.Round.core; m_char = '!' }
          :: !markers;
      if r.Round.area_index = 14 || Round.detected r then
        Printf.printf
          "[%8.3f s] SATIN: core %d scanned area %2d in %s -> %s\n"
          (Sim_time.to_sec_f r.Round.started)
          r.Round.core r.Round.area_index
          (Sim_time.to_string r.Round.duration)
          (if Round.detected r then "TAMPERED — rootkit caught mid-restore"
           else "clean"));
  Evader.start evader;
  Printf.printf "rootkit armed; SATIN wakes ~every 4 s on a random core\n\n";

  Scenario.run_for s (Sim_time.s 240);
  Satin_def.stop satin;
  Evader.stop evader;

  let rootkit = Evader.rootkit evader in
  let area14 =
    List.filter (fun r -> r.Round.area_index = 14) (Satin_def.rounds satin)
  in
  Printf.printf
    "\ntimeline (# = introspection round, ! = detection):\n%s"
    (Satin.Gantt.render gantt ~markers:!markers ~t0:Satin_engine.Sim_time.zero
       ~t1:(Scenario.now s) ~width:100 ());
  Printf.printf
    "\nsummary: %d rounds (%d full passes), area 14 checked %d times,\n\
     detected %d times; the attacker hid %d times and still lost every race.\n"
    (Satin_def.rounds_count satin)
    (Satin_def.full_passes satin)
    (List.length area14)
    (List.length (List.filter Round.detected area14))
    (Rootkit.hides rootkit)
