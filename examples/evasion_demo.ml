(* TZ-Evader vs a PKM-style defense (the paper's Section IV story).

   A state-of-the-art asynchronous introspection — random wake-up time,
   random core, but a single full-kernel scan per round — faces TZ-Evader.
   The prober notices the world switch within ~2 ms, the rootkit erases its
   8-byte syscall hijack in ~6 ms, and the scan front, which needs ~57 ms
   just to reach the syscall table, finds nothing. Run with:

     dune exec examples/evasion_demo.exe *)

module Scenario = Satin.Scenario
module Sim_time = Satin_engine.Sim_time
module Baseline = Satin_introspect.Baseline
module Round = Satin_introspect.Round
module Kprober = Satin_attack.Kprober
module Evader = Satin_attack.Evader
module Rootkit = Satin_attack.Rootkit

let () =
  let s = Scenario.create ~seed:2 () in
  let defense =
    Scenario.install_baseline s
      {
        Baseline.timing = Baseline.Random_period (Sim_time.s 8);
        core_choice = Baseline.Random_core;
      }
  in
  let evader =
    Evader.deploy s.Scenario.kernel
      {
        Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 500 };
      }
  in
  let rootkit = Evader.rootkit evader in

  Baseline.on_round defense (fun r ->
      Printf.printf
        "[%8.3f s] defender: full-kernel scan on core %d took %s -> %s\n"
        (Sim_time.to_sec_f r.Round.started)
        r.Round.core
        (Sim_time.to_string r.Round.duration)
        (if Round.detected r then "TAMPERED" else "clean (evaded!)"));
  Kprober.on_suspect (Evader.prober evader) (fun d ->
      Printf.printf
        "[%8.3f s] attacker: core %d vanished (lateness %.2e s) -> hiding\n"
        (Sim_time.to_sec_f d.Kprober.det_time)
        d.Kprober.det_core d.Kprober.det_lateness);

  Evader.start evader;
  Printf.printf "rootkit armed at t=0; defense scans ~every 8 s\n\n";
  Scenario.run_for s (Sim_time.s 120);
  Baseline.stop defense;
  Evader.stop evader;

  let wall = Sim_time.to_sec_f (Scenario.now s) in
  let uptime = Sim_time.to_sec_f (Rootkit.attack_uptime rootkit) in
  Printf.printf
    "\nsummary: %d scans, %d detections, %d successful hides,\n\
     attack uptime %.1f%% of %.0f s — the evasion defeats the defense.\n"
    (Baseline.rounds_count defense)
    (Baseline.detections defense)
    (Rootkit.hides rootkit)
    (100.0 *. uptime /. wall)
    wall
