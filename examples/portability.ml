(* Porting SATIN to a non-TrustZone TEE (the paper's §VII-D).

   SATIN needs three things: multi-core, a high-privileged execution mode,
   and a secure timer. This example rebuilds the whole stack on a
   hypothetical 8-core x86 server whose TEE is SMM-like — identical cores
   and a ~30 µs privileged-mode switch, ten times the TrustZone monitor's.
   The Equation (2) area bound shrinks accordingly, the partition is
   recomputed, and the detection result still holds.

     dune exec examples/portability.exe *)

module Sim_time = Satin_engine.Sim_time
module Cycle_model = Satin_hw.Cycle_model
module Platform = Satin_hw.Platform
module Layout = Satin_kernel.Layout
module Kernel = Satin_kernel.Kernel
module Area = Satin_introspect.Area
module Checker = Satin_introspect.Checker
module Satin_def = Satin_introspect.Satin
module Round = Satin_introspect.Round
module Race = Satin.Race

let () =
  let cycle = Cycle_model.smm_like in
  (* Eight identical cores; the A57 tag here just means "fast core". *)
  let platform =
    Platform.create ~seed:9 ~cycle
      ~core_types:(Array.make 8 Cycle_model.A57)
      ()
  in
  let kernel = Kernel.boot platform in
  let tsp = Satin_tz.Tsp.install platform in
  let smem =
    Satin_tz.Secure_memory.create ~memory:platform.Platform.memory
      ~base:(24 * 1024 * 1024) ~size:(1024 * 1024)
  in
  let checker =
    Checker.create ~memory:platform.Platform.memory ~cycle
      ~prng:(Platform.split_prng platform) ~algo:Satin_introspect.Hash.Djb2
      ~style:Checker.Direct_hash ()
  in

  (* The slower privileged-mode switch changes the race budget. *)
  let race =
    Race.of_cycle cycle ~checker_core:Cycle_model.A57
      ~evader_core:Cycle_model.A57
  in
  Printf.printf "SMM-like platform: switch %.1f us, byte rate %.2f ns\n"
    (race.Race.ts_switch *. 1e6)
    (race.Race.ts_1byte *. 1e9);
  Printf.printf "area bound: %d bytes (Juno: 1218351)\n" (Race.s_bound race);

  let areas = Area.of_layout kernel.Kernel.layout in
  Printf.printf "paper partition still fits: max area %d < bound -> %b\n\n"
    (Area.max_size areas)
    (Area.max_size areas < Race.s_bound race);

  (* Run SATIN against the evading rootkit on the new platform. *)
  let satin =
    Satin_def.install ~tsp ~kernel ~checker ~secure_memory:smem
      { Satin_def.default_config with Satin_def.t_goal = Sim_time.s 38 }
  in
  Satin_def.start satin;
  let evader =
    Satin_attack.Evader.deploy kernel
      {
        Satin_attack.Evader.default_config with
        prober =
          {
            Satin_attack.Kprober.default_config with
            period = Sim_time.us 500;
          };
      }
  in
  Satin_attack.Evader.start evader;
  Satin_engine.Engine.run_until platform.Platform.engine (Sim_time.s 80);
  Satin_def.stop satin;
  Satin_attack.Evader.stop evader;

  let rounds = Satin_def.rounds satin in
  let area14 = List.filter (fun r -> r.Round.area_index = 14) rounds in
  Printf.printf
    "80 s campaign on 8 cores: %d rounds, cores used: %s\n"
    (List.length rounds)
    (String.concat ","
       (List.map string_of_int
          (List.sort_uniq compare (List.map (fun r -> r.Round.core) rounds))));
  Printf.printf "area-14 checks %d, detections %d -> SATIN ports.\n"
    (List.length area14)
    (List.length (List.filter Round.detected area14))
