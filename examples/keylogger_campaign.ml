(* The introduction's motivating APT: a key-logger that intercepts a system
   interrupt and must stay resident to collect keystrokes. It uses TZ-Evader
   to camouflage itself whenever introspection runs. How many keystrokes does
   it capture under each defense?

     dune exec examples/keylogger_campaign.exe *)

module Scenario = Satin.Scenario
module Sim_time = Satin_engine.Sim_time
module Engine = Satin_engine.Engine
module Satin_def = Satin_introspect.Satin
module Baseline = Satin_introspect.Baseline
module Round = Satin_introspect.Round
module Kprober = Satin_attack.Kprober
module Evader = Satin_attack.Evader
module Rootkit = Satin_attack.Rootkit

let campaign_s = 120
let keystroke_period = Sim_time.ms 250 (* a fast typist: 4 keys/s *)

type outcome = {
  label : string;
  captured : int;
  typed : int;
  detections : int;
  first_detection_s : float option;
}

(* Simulated user typing: each keystroke is captured iff the hijack is live
   at that instant (the key-logger's interrupt hook is its attack trace). *)
let run_campaign ~label ~defense seed =
  let s = Scenario.create ~seed () in
  let detections = ref 0 in
  let first_detection = ref None in
  let note_round r =
    if Round.detected r then begin
      incr detections;
      if !first_detection = None then
        first_detection := Some (Sim_time.to_sec_f r.Round.started)
    end
  in
  (match defense with
  | `None -> ()
  | `Pkm ->
      let b =
        Scenario.install_baseline s
          {
            Baseline.timing = Baseline.Random_period (Sim_time.s 8);
            core_choice = Baseline.Random_core;
          }
      in
      Baseline.on_round b note_round
  | `Satin ->
      let satin =
        Scenario.install_satin s
          ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 76 }
          ()
      in
      Satin_def.on_round satin note_round);
  let evader =
    Evader.deploy s.Scenario.kernel
      {
        Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 500 };
      }
  in
  Evader.start evader;
  let rootkit = Evader.rootkit evader in
  let captured = ref 0 and typed = ref 0 in
  ignore
    (Engine.every (Scenario.engine s) ~period:keystroke_period (fun () ->
         incr typed;
         if Rootkit.hijacked_now rootkit then incr captured));
  Scenario.run_for s (Sim_time.s campaign_s);
  Evader.stop evader;
  {
    label;
    captured = !captured;
    typed = !typed;
    detections = !detections;
    first_detection_s = !first_detection;
  }

let () =
  Printf.printf
    "key-logger APT with TZ-Evader, %d s campaign, %.0f keystrokes/s typed\n\n"
    campaign_s
    (1.0 /. Sim_time.to_sec_f keystroke_period);
  let results =
    [
      run_campaign ~label:"no introspection" ~defense:`None 10;
      run_campaign ~label:"PKM-style full scan" ~defense:`Pkm 11;
      run_campaign ~label:"SATIN" ~defense:`Satin 12;
    ]
  in
  Printf.printf "%-22s %10s %10s %12s %s\n" "defense" "captured" "typed"
    "detections" "first alarm";
  List.iter
    (fun r ->
      Printf.printf "%-22s %10d %10d %12d %s\n" r.label r.captured r.typed
        r.detections
        (match r.first_detection_s with
        | Some t -> Printf.sprintf "at %.1f s" t
        | None -> "never"))
    results;
  print_endline
    "\nUnder SATIN the logger still captures keys between rounds, but every\n\
     pass over the syscall-table area raises an alarm the platform can act\n\
     on; the PKM-style defense never notices anything."
